// Package metrics is a dependency-free Prometheus text-exposition
// registry for gpowerd: counters, gauges and histograms with label
// vectors, plus scrape-time collector functions for values that live
// elsewhere (surface-cache statistics, registry generations).
//
// Only the pieces gpowerd needs are implemented, but the output follows
// the Prometheus text format (version 0.0.4): one `# HELP` and `# TYPE`
// line per family, children sorted by label values so the exposition is
// deterministic, floats rendered with Go's shortest round-trip formatting.
// Updates are lock-free (atomics); child creation takes a per-family
// mutex once and callers are expected to cache the returned child.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down. The value is stored
// as IEEE-754 bits in an atomic word.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative-le buckets, with an exact
// running sum. Bucket bounds are fixed at construction.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Buckets are cumulative in the exposition; store per-bucket counts
	// here and accumulate at scrape time. SearchFloat64s finds the first
	// bound >= v, i.e. the tightest le-bucket; i == len(bounds) means only
	// the implicit +Inf bucket (the trailing slot) holds it.
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// kind is the family's exposition TYPE.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("unknown(%d)", int(k))
	}
}

// child is one labeled instance inside a family.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	// fn, when set, is sampled at scrape time instead of reading a stored
	// value (collector-style children).
	fn func() float64
}

// family is one metric name with HELP/TYPE and its labeled children.
type family struct {
	name      string
	help      string
	kind      kind
	labels    []string
	bounds    []float64 // histogram families only
	mu        sync.Mutex
	children  map[string]*child
	order     []string // sorted lazily at scrape
	unsorted  bool
	singleton *child // for label-less families
}

func (f *family) get(labelValues []string) *child {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d",
			f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{labelValues: append([]string(nil), labelValues...)}
	switch f.kind {
	case kindCounter:
		c.counter = &Counter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		c.hist = &Histogram{
			bounds:  f.bounds,
			buckets: make([]atomic.Uint64, len(f.bounds)+1),
		}
	}
	f.children[key] = c
	f.order = append(f.order, key)
	f.unsorted = true
	return c
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns (creating if needed) the child for the label values.
func (v *CounterVec) With(labelValues ...string) *Counter { return v.f.get(labelValues).counter }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns (creating if needed) the child for the label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge { return v.f.get(labelValues).gauge }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns (creating if needed) the child for the label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram { return v.f.get(labelValues).hist }

// Registry is an ordered collection of metric families. Registration
// happens at startup (panics on duplicate names, like prometheus/client_golang);
// scraping is concurrency-safe with updates.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) register(name, help string, k kind, labels []string, bounds []float64) *family {
	if name == "" {
		panic("metrics: empty family name")
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     k,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: map[string]*child{},
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate family %q", name))
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// NewCounterVec registers a counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// NewGaugeVec registers a gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// NewHistogramVec registers a histogram family with the given ascending
// upper bucket bounds (+Inf is implicit).
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, bounds)}
}

// NewGaugeFunc registers a label-less gauge whose value is sampled at
// scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	f.singleton = &child{fn: fn}
}

// NewCounterFunc registers a label-less counter whose value is sampled at
// scrape time (the function must be monotonically non-decreasing).
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindCounter, nil, nil)
	f.singleton = &child{fn: fn}
}

// GaugeFuncVec is a gauge family whose children are scrape-time functions.
type GaugeFuncVec struct{ f *family }

// NewGaugeFuncVec registers a labeled gauge family with function children.
func (r *Registry) NewGaugeFuncVec(name, help string, labels ...string) *GaugeFuncVec {
	return &GaugeFuncVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// With installs fn as the child for the label values (idempotent: the
// first registration wins).
func (v *GaugeFuncVec) With(fn func() float64, labelValues ...string) {
	c := v.f.get(labelValues)
	if c.fn == nil {
		c.fn = fn
	}
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trip decimal, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// escapeLabel escapes a label value per the text format (backslash,
// double-quote, newline).
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// labelString renders {k="v",...} for the family's labels plus any extra
// pairs (used for histogram `le`). Empty when there are no labels.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes the full exposition. Families appear in
// registration order; children within a family are sorted by label
// values, so the output is deterministic for a fixed set of samples.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if err := writeFamily(w, f); err != nil {
			return err
		}
	}
	return nil
}

func writeFamily(w io.Writer, f *family) error {
	var children []*child
	if f.singleton != nil {
		children = []*child{f.singleton}
	} else {
		f.mu.Lock()
		if f.unsorted {
			sort.Strings(f.order)
			f.unsorted = false
		}
		children = make([]*child, 0, len(f.order))
		for _, key := range f.order {
			children = append(children, f.children[key])
		}
		f.mu.Unlock()
	}
	if len(children) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, c := range children {
		if err := writeChild(w, f, c); err != nil {
			return err
		}
	}
	return nil
}

func writeChild(w io.Writer, f *family, c *child) error {
	ls := labelString(f.labels, c.labelValues, "", "")
	switch {
	case c.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ls, formatFloat(c.fn()))
		return err
	case f.kind == kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ls, c.counter.Value())
		return err
	case f.kind == kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ls, formatFloat(c.gauge.Value()))
		return err
	case f.kind == kindHistogram:
		var cum uint64
		for i, bound := range c.hist.bounds {
			cum += c.hist.buckets[i].Load()
			bls := labelString(f.labels, c.labelValues, "le", formatFloat(bound))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bls, cum); err != nil {
				return err
			}
		}
		// The +Inf bucket equals the total count by definition; use the
		// count so the invariant holds even mid-scrape.
		count := c.hist.Count()
		bls := labelString(f.labels, c.labelValues, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bls, count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ls, formatFloat(c.hist.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, count)
		return err
	default:
		return fmt.Errorf("metrics: family %q has unknown kind %v", f.name, f.kind)
	}
}
