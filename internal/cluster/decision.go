package cluster

import (
	"math"
	"sync"
	"sync/atomic"

	"gpupower/internal/core"
	"gpupower/internal/governor"
)

// Decision is one memoized governor verdict: the policy-optimal ladder point
// of a prediction surface under a power cap and an optional relative-time
// bound. It carries the columns the simulator consumes per job so the event
// loop never re-touches the surface.
type Decision struct {
	// Index is the ladder index of the chosen configuration.
	Index int
	// PowerW and RelTime are the surface columns at Index.
	PowerW  float64
	RelTime float64
}

// decisionKey identifies one memoized decision. Surfaces are immutable and
// shared (one instance per cache entry), so the surface pointer is the
// identity of (model generation, device, reference, utilization); the rest
// of the key is the governor question asked of it. Float knobs are keyed by
// their bit patterns so the key stays comparable without tolerance games.
type decisionKey struct {
	surf        *core.Surface
	policy      governor.Policy
	capBits     uint64
	stretchBits uint64
}

// DecisionCache memoizes governor decisions per prediction surface — the
// generation-keyed layer above the SurfaceCache. A fleet run asks the same
// question (device-model × kernel class × policy × cap × stretch) for every
// one of thousands of GPUs; the first ask pays the ladder scan, the rest are
// a read-locked map hit. Entries are keyed by surface identity, and every
// surface records the model generation it was computed from (Surface.Gen),
// so a refit or InvalidateSurfaces orphans cached decisions exactly when it
// orphans their surfaces: the new generation's surfaces are new pointers and
// miss, and the stale entries are evicted first on overflow.
type DecisionCache struct {
	mu       sync.RWMutex
	entries  map[decisionKey]Decision
	capacity int

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewDecisionCache returns a cache bounded to capacity entries (minimum 1).
func NewDecisionCache(capacity int) *DecisionCache {
	if capacity < 1 {
		capacity = 1
	}
	return &DecisionCache{entries: make(map[decisionKey]Decision), capacity: capacity}
}

// Decisions is the process-wide default cache. A fleet's working set is
// |fleet device models| × |kernel classes| × |policy variants| — hundreds at
// the outside — so 1024 entries never evict live generations in practice.
var Decisions = NewDecisionCache(1024)

// Get returns the memoized decision for (s, policy, powerCap, maxRelTime),
// scanning the surface on miss via governor.DecideOnSurfaceBounded. Errors
// (no feasible ladder point) are returned, never cached.
//
//gpower:noalloc the warm path is a read-locked map hit; only misses insert
func (c *DecisionCache) Get(s *core.Surface, policy governor.Policy, powerCap, maxRelTime float64) (Decision, error) {
	key := decisionKey{
		surf:        s,
		policy:      policy,
		capBits:     math.Float64bits(powerCap),
		stretchBits: math.Float64bits(maxRelTime),
	}
	c.mu.RLock()
	d, ok := c.entries[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return d, nil
	}
	c.misses.Add(1)
	i, err := governor.DecideOnSurfaceBounded(s, policy, powerCap, maxRelTime)
	if err != nil {
		return Decision{}, err
	}
	d = Decision{Index: i, PowerW: s.PowerW[i], RelTime: s.RelTime[i]}
	c.mu.Lock()
	if len(c.entries) >= c.capacity {
		//gpower:allocs cold overflow: stale-generation eviction may reset the entry map
		c.evictLocked(s.Gen)
	}
	//gpower:allocs cold miss: inserting the freshly scanned decision may grow the entry map
	c.entries[key] = d
	c.mu.Unlock()
	return d, nil
}

// evictLocked reclaims space: decisions for surfaces of generations other
// than liveGen go first (their models were refit or invalidated); if the
// cache is still full, it resets. Dropping entries is always correct — the
// cache is a performance device.
func (c *DecisionCache) evictLocked(liveGen uint64) {
	for k := range c.entries {
		if k.surf.Gen != liveGen {
			delete(c.entries, k)
		}
	}
	if len(c.entries) >= c.capacity {
		c.entries = make(map[decisionKey]Decision, c.capacity)
	}
}

// Stats reports cumulative warm (hit) and cold (miss) Get counts.
func (c *DecisionCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of cached decisions (diagnostics).
func (c *DecisionCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
