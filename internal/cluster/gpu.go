package cluster

import "math"

// Per-GPU simulation state: a single-server FIFO queue (M/G/1 shape, with
// the service law set by the active DVFS policy), plus the accumulators the
// fleet fold consumes. Everything in this file is owned by exactly one shard
// during a run — no field is shared across workers.

// job is one queued request: a kernel-class index plus its arrival time and
// absolute deadline.
type job struct {
	class    int32
	arrival  float64
	deadline float64
}

// jobRing is a growable FIFO ring buffer of jobs. It grows only while a
// GPU's backlog sets a new high-water mark; in steady state push/pop touch
// the backing array in place.
type jobRing struct {
	buf  []job
	head int
	n    int
}

// push appends j.
//
//gpower:noalloc the ring grows only until it covers the peak queue depth
func (r *jobRing) push(j job) {
	if r.n == len(r.buf) {
		//gpower:allocs warm-up only: the ring doubles until it covers the peak queue depth, then pushes reuse it
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = j
	r.n++
}

// pop removes and returns the oldest job; callers check emptiness via n.
func (r *jobRing) pop() job {
	j := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return j
}

// grow doubles the ring, unrolling the wrapped contents.
func (r *jobRing) grow() {
	capacity := 2 * len(r.buf)
	if capacity < 8 {
		capacity = 8
	}
	buf := make([]job, capacity)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}

// Latency histogram: fixed-size log-spaced bins addressed straight from the
// float64 bit pattern — histSub sub-bins per power of two, no Log calls on
// the event path. Percentiles are read from the merged fleet histogram; the
// reported quantile is the lower edge of the bin holding the rank, i.e.
// exact to within one sub-bin (≤ ~19% with 4 sub-bins per octave), which is
// ample for p50/p99 of a latency distribution spanning decades.

const (
	// histSubBits sub-bin bits per octave: 2 → 4 sub-bins per power of two.
	histSubBits = 2
	histSub     = 1 << histSubBits
	// histMinExp is the lowest resolved biased exponent: 2^(975-1023) =
	// 2^-48 ≈ 3.6e-15 s. Everything below (including zero and subnormals)
	// lands in bin 0.
	histMinExp = 975
	// histBins covers 96 octaves above histMinExp — up to 2^48 s — before
	// clamping to the top bin.
	histBins = 96 * histSub
)

// latHist is one latency histogram. Bin counts are plain int64s; merging is
// element-wise addition, so the fleet fold is associative and exact.
type latHist struct {
	bins  [histBins]int64
	count int64
}

// add records one latency sample, in seconds.
func (h *latHist) add(seconds float64) {
	bits := math.Float64bits(seconds)
	exp := int(bits >> 52 & 0x7ff)
	idx := 0
	if exp >= histMinExp {
		sub := int(bits >> (52 - histSubBits) & (histSub - 1))
		idx = (exp-histMinExp)<<histSubBits + sub
		if idx >= histBins {
			idx = histBins - 1
		}
	}
	h.bins[idx]++
	h.count++
}

// merge folds other into h (element-wise).
func (h *latHist) merge(other *latHist) {
	for i := range h.bins {
		h.bins[i] += other.bins[i]
	}
	h.count += other.count
}

// quantile returns the lower edge of the bin containing the q-quantile
// (0 < q ≤ 1), or 0 for an empty histogram.
func (h *latHist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.bins {
		cum += c
		if cum >= rank {
			return binLowerEdge(i)
		}
	}
	return binLowerEdge(histBins - 1)
}

// binLowerEdge reconstructs the lower edge of bin i: 2^(e-1023)·(1+sub/histSub).
func binLowerEdge(i int) float64 {
	if i == 0 {
		return 0
	}
	exp := uint64(histMinExp + i>>histSubBits)
	sub := uint64(i & (histSub - 1))
	bits := exp<<52 | sub<<(52-histSubBits)
	return math.Float64frombits(bits)
}

// FNV-1a trace hashing. Every GPU folds its own dispatch history into a
// 64-bit digest; the fleet digest chains the per-GPU digests in GPU index
// order. Two runs agree on the digest iff they dispatched the same events at
// the bitwise-same times in the same per-GPU order — the property the
// serial-vs-parallel and seed-reproducibility tests pin.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a digest, byte by byte.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v >> (8 * i) & 0xff
		h *= fnvPrime64
	}
	return h
}

// gpuMetrics are one GPU's run accumulators. They are folded into fleet
// Metrics in GPU index order, identically in serial and parallel runs.
type gpuMetrics struct {
	events    int64
	jobs      int64
	missed    int64
	energyJ   float64
	busySec   float64
	endAt     float64 // completion time of the GPU's last job
	hist      latHist
	traceHash uint64
}

// gpuState is one simulated GPU: its device-model binding, its private
// random stream, the FIFO backlog, and the job in service.
type gpuState struct {
	idx int32 // index within the owning shard's GPU slice
	rt  *deviceRuntime
	rng prng

	queue jobRing
	busy  bool

	// Job in service (valid while busy): its power draw and service length
	// are fixed at dispatch, so completion handling is pure accounting.
	curPowerW  float64
	curService float64

	m gpuMetrics
}

// reset returns the GPU to its pre-run state, keeping grown buffers so a
// reused engine reaches zero steady-state allocations.
func (g *gpuState) reset(rt *deviceRuntime, seed uint64, id int) {
	g.rt = rt
	g.rng = newPRNG(seed, uint64(id))
	g.queue.head, g.queue.n = 0, 0
	g.busy = false
	g.curPowerW, g.curService = 0, 0
	g.m = gpuMetrics{traceHash: fnvOffset64}
}
