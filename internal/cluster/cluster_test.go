package cluster

import (
	"context"
	"math"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"gpupower/internal/core"
	"gpupower/internal/governor"
	"gpupower/internal/hw"
	"gpupower/internal/parallel"
)

// testModel builds a synthetic but valid fitted model for dev — the same
// shape the serving tests use, cheap enough to construct per test.
func testModel(t testing.TB, dev *hw.Device, beta0 float64) *core.Model {
	t.Helper()
	m := &core.Model{
		DeviceName: dev.Name,
		Ref:        dev.DefaultConfig(),
		Beta:       [4]float64{beta0, 0.02, 10, 0.002},
		OmegaCore: map[hw.Component]float64{
			hw.Int: 0.011, hw.SP: 0.013, hw.DP: 0.017,
			hw.SF: 0.007, hw.Shared: 0.005, hw.L2: 0.009,
		},
		OmegaMem:        0.004,
		Voltages:        core.NewVoltageTable(dev.CoreFreqs, dev.MemFreqs),
		L2BytesPerCycle: dev.L2BytesPerCycle,
		Iterations:      3,
		Converged:       true,
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("synthetic model invalid: %v", err)
	}
	return m
}

// testClasses is the job mix used across the tests: a compute-bound, a
// memory-bound and a mixed class, with distinct service times.
var testClasses = []KernelClass{
	{Name: "compute", Weight: 5},
	{Name: "memory", Weight: 3},
	{Name: "mixed", Weight: 2},
}

// testDeviceClasses realizes testClasses on one device, scaling service
// times by scale so heterogeneous fleets exercise distinct schedules.
func testDeviceClasses(scale float64) []DeviceClass {
	return []DeviceClass{
		{Util: core.Utilization{hw.SP: 0.9, hw.Int: 0.5, hw.L2: 0.2, hw.DRAM: 0.1}, RefSeconds: 0.030 * scale},
		{Util: core.Utilization{hw.SP: 0.2, hw.L2: 0.5, hw.DRAM: 0.8}, RefSeconds: 0.080 * scale},
		{Util: core.Utilization{hw.SP: 0.5, hw.DP: 0.3, hw.L2: 0.4, hw.DRAM: 0.4}, RefSeconds: 0.050 * scale},
	}
}

// testOptions builds a two-device-model fleet under moderate Poisson load.
func testOptions(t testing.TB, gpus int, seed uint64) *Options {
	t.Helper()
	devA := hw.GTXTitanX()
	devB := hw.TeslaK40c()
	return &Options{
		GPUs:           gpus,
		HorizonSeconds: 20,
		Seed:           seed,
		Fleet: []DeviceModel{
			{Device: devA, Model: testModel(t, devA, 35), Classes: testDeviceClasses(1)},
			{Device: devB, Model: testModel(t, devB, 40), Classes: testDeviceClasses(1.5)},
		},
		Classes: testClasses,
		Workload: Workload{
			Process:    Poisson,
			RatePerGPU: 8,
			SlackMin:   2,
			SlackMax:   6,
		},
		Policy:     ModelDVFS,
		Governor:   governor.MinEnergy,
		MaxStretch: 2,
	}
}

// TestSerialParallelIdentical pins the repo's determinism discipline on the
// cluster engine: a parallel run (GPUs sharded across workers) must produce
// bitwise-identical Metrics — energy folds, latency quantiles, trace hash —
// to the sequential-mode oracle, at any worker count.
func TestSerialParallelIdentical(t *testing.T) {
	ctx := context.Background()
	for _, policy := range []Policy{Static, ModelDVFS, Oracle} {
		opts := testOptions(t, 97, 42) // prime fleet size: ragged last shard
		opts.Policy = policy

		prev := parallel.SetSequential(true)
		serial, err := Run(ctx, opts)
		parallel.SetSequential(prev)
		if err != nil {
			t.Fatalf("%v serial: %v", policy, err)
		}

		prevProcs := runtime.GOMAXPROCS(4)
		par, err := Run(ctx, opts)
		runtime.GOMAXPROCS(prevProcs)
		if err != nil {
			t.Fatalf("%v parallel: %v", policy, err)
		}

		if !reflect.DeepEqual(serial, par) {
			t.Errorf("%v: parallel metrics diverge from serial oracle\nserial:   %+v\nparallel: %+v", policy, serial, par)
		}
		if serial.Jobs == 0 {
			t.Errorf("%v: simulation completed no jobs", policy)
		}
	}
}

// TestSeedReproducibility pins the stochastic contract: the same seed
// replays the identical event history, and a different seed does not.
func TestSeedReproducibility(t *testing.T) {
	ctx := context.Background()
	a1, err := Run(ctx, testOptions(t, 50, 7))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Run(ctx, testOptions(t, 50, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Errorf("same seed diverges:\nrun 1: %+v\nrun 2: %+v", a1, a2)
	}
	b, err := Run(ctx, testOptions(t, 50, 8))
	if err != nil {
		t.Fatal(err)
	}
	if b.TraceHash == a1.TraceHash {
		t.Error("different seeds produced the same trace hash")
	}
}

// TestClusterSteadyStateAllocsBounded pins the zero-allocation steady state
// of the event loop: after one warm-up run, re-running a Simulator (the
// benchmark loop, parameter sweeps) allocates nothing — event records come
// from the pool, the heap and rings are at their high-water marks, and the
// metrics fold writes into caller-owned memory.
func TestClusterSteadyStateAllocsBounded(t *testing.T) {
	ctx := context.Background()
	prev := parallel.SetSequential(true) // the fan-out path allocates goroutine stacks by design
	defer parallel.SetSequential(prev)

	sim, err := NewSimulator(ctx, testOptions(t, 60, 3))
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := sim.RunInto(ctx, &m); err != nil { // warm-up: grow pools to high-water
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if err := sim.RunInto(ctx, &m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state run allocates %.1f times, want 0", allocs)
	}
	if m.Jobs == 0 || m.Events == 0 {
		t.Fatalf("degenerate run: %+v", m)
	}
}

// TestPolicyOrdering sanity-checks the physics of the three policies on the
// same traffic: DVFS policies must not spend more energy than static clocks
// (that is the point of the model), and the per-job oracle — which may
// stretch each job to its full deadline slack, beyond ModelDVFS's
// MaxStretch — must save at least as much energy as the class-granular
// decision. (Miss rates are NOT monotone across policies: the oracle's
// aggressive stretching lengthens queues, so it can miss more deadlines
// than ModelDVFS while still spending less energy.)
func TestPolicyOrdering(t *testing.T) {
	ctx := context.Background()
	run := func(p Policy) *Metrics {
		t.Helper()
		opts := testOptions(t, 40, 11)
		opts.Policy = p
		m, err := Run(ctx, opts)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		return m
	}
	static := run(Static)
	dvfs := run(ModelDVFS)
	oracle := run(Oracle)

	if dvfs.EnergyJ >= static.EnergyJ {
		t.Errorf("model-dvfs energy %.1f J not below static %.1f J", dvfs.EnergyJ, static.EnergyJ)
	}
	if oracle.EnergyJ >= static.EnergyJ {
		t.Errorf("oracle energy %.1f J not below static %.1f J", oracle.EnergyJ, static.EnergyJ)
	}
	if oracle.EnergyJ > dvfs.EnergyJ {
		t.Errorf("oracle energy %.1f J above model-dvfs %.1f J", oracle.EnergyJ, dvfs.EnergyJ)
	}
	if oracle.MissRate > 0.2 {
		t.Errorf("oracle miss rate %.4f implausibly high", oracle.MissRate)
	}
	// MaxStretch ≤ SlackMin: a ModelDVFS fleet under moderate load should
	// miss only queue-delayed deadlines, not plan to miss.
	if dvfs.MissRate > 0.2 {
		t.Errorf("model-dvfs miss rate %.4f implausibly high for stretch %g within slack %g",
			dvfs.MissRate, 2.0, 2.0)
	}
	for _, m := range []*Metrics{static, dvfs, oracle} {
		if m.P50Seconds <= 0 || m.P99Seconds < m.P50Seconds {
			t.Errorf("implausible latency quantiles p50=%g p99=%g", m.P50Seconds, m.P99Seconds)
		}
	}
}

// TestArrivalProcesses runs each arrival process and checks the offered
// load lands near its analytic mean. The streams are seeded, so this cannot
// flake; the gamma bound is wider because a CV=2 renewal stream's count
// variance is several times Poisson's over a 20 s window.
func TestArrivalProcesses(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		proc      Process
		tolerance float64
	}{
		{Poisson, 0.1},
		{GammaArrivals, 0.25},
		{Diurnal, 0.1},
	} {
		opts := testOptions(t, 50, 5)
		opts.Workload.Process = tc.proc
		opts.Workload.CV = 2 // bursty gamma
		opts.Workload.DiurnalAmplitude = 0.5
		opts.Workload.DiurnalPeriod = 10
		m, err := Run(ctx, opts)
		if err != nil {
			t.Fatalf("%v: %v", tc.proc, err)
		}
		want := opts.Workload.RatePerGPU * float64(opts.GPUs) * opts.HorizonSeconds
		if f := float64(m.Jobs) / want; f < 1-tc.tolerance || f > 1+tc.tolerance {
			t.Errorf("%v: %d jobs, want ≈%.0f (ratio %.3f)", tc.proc, m.Jobs, want, f)
		}
	}
}

// TestEventHeapOrdering pins the heap's total order on an adversarial batch:
// duplicate timestamps across GPUs and kinds must pop in (time, gpu,
// completion-before-arrival) order.
func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	var pool eventPool
	r := newPRNG(123, 0)
	const n = 500
	for i := 0; i < n; i++ {
		e := pool.get()
		e.at = float64(r.next() % 50) // dense duplicates
		e.gpu = int32(r.next() % 7)
		e.kind = eventKind(r.next() % 2)
		h.push(e)
	}
	var popped []*event
	for {
		e := h.pop()
		if e == nil {
			break
		}
		popped = append(popped, e)
	}
	if len(popped) != n {
		t.Fatalf("popped %d events, pushed %d", len(popped), n)
	}
	sorted := sort.SliceIsSorted(popped, func(i, j int) bool {
		a, b := popped[i], popped[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.gpu != b.gpu {
			return a.gpu < b.gpu
		}
		return a.kind > b.kind
	})
	if !sorted {
		t.Error("heap pop order violates the (time, gpu, kind) total order")
	}
}

// TestLatHistQuantile checks the log-binned histogram against exact sample
// quantiles within its one-sub-bin resolution bound.
func TestLatHistQuantile(t *testing.T) {
	var h latHist
	r := newPRNG(9, 1)
	samples := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		v := r.exp(1) * 0.01 // latencies around 10 ms
		samples = append(samples, v)
		h.add(v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.50, 0.99} {
		exact := samples[int(math.Ceil(q*float64(len(samples))))-1]
		got := h.quantile(q)
		// The reported value is the lower edge of the sample's bin: within
		// a factor of one sub-bin (2^(1/4) ≈ 1.19) below the exact value.
		if got > exact || got < exact/1.2 {
			t.Errorf("q%.2f = %g, exact %g (outside one sub-bin)", q, got, exact)
		}
	}
	if h.quantile(0.5) == 0 {
		t.Error("median of a positive sample is zero")
	}
}

// TestDecisionCache pins the decision cache's memoization and its
// generation-keyed eviction.
func TestDecisionCache(t *testing.T) {
	ctx := context.Background()
	dev := hw.GTXTitanX()
	m := testModel(t, dev, 35)
	u := core.Utilization{hw.SP: 0.7, hw.DRAM: 0.3}
	s, err := core.Surfaces.Get(ctx, m, dev, m.Ref, u)
	if err != nil {
		t.Fatal(err)
	}
	c := NewDecisionCache(8)
	d1, err := c.Get(s, governor.MinEnergy, dev.TDP, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.Get(s, governor.MinEnergy, dev.TDP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("cache returned different decisions: %+v vs %+v", d1, d2)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}
	// The decision must agree with the governor's direct scan.
	i, err := governor.DecideOnSurface(s, governor.MinEnergy, dev.TDP)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Index != i {
		t.Errorf("cached index %d, governor scan %d", d1.Index, i)
	}

	// A refit (new generation → new surface) must not hit stale entries,
	// and stale-generation entries are evicted first on overflow.
	m.InvalidateSurfaces()
	s2, err := core.Surfaces.Get(ctx, m, dev, m.Ref, u)
	if err != nil {
		t.Fatal(err)
	}
	if s2 == s {
		t.Fatal("invalidation did not produce a new surface")
	}
	for cap := 200.0; cap < 208; cap++ { // overflow the 8-entry cache
		if _, err := c.Get(s2, governor.MinEnergy, cap, 0); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 8 {
		t.Errorf("cache holds %d entries, capacity 8", c.Len())
	}
}

// TestOptionsValidation spot-checks the option guards.
func TestOptionsValidation(t *testing.T) {
	ctx := context.Background()
	cases := []func(*Options){
		func(o *Options) { o.GPUs = 0 },
		func(o *Options) { o.HorizonSeconds = 0 },
		func(o *Options) { o.Fleet = nil },
		func(o *Options) { o.Classes = nil },
		func(o *Options) { o.Classes[0].Weight = 0 },
		func(o *Options) { o.Fleet[0].Classes = o.Fleet[0].Classes[:1] },
		func(o *Options) { o.Fleet[0].Classes[0].RefSeconds = 0 },
		func(o *Options) { o.Workload.RatePerGPU = 0 },
		func(o *Options) { o.Workload.SlackMin = 0.5 },
		func(o *Options) { o.Policy = Policy(99) },
	}
	for i, mutate := range cases {
		opts := testOptions(t, 4, 1)
		mutate(opts)
		if _, err := Run(ctx, opts); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

// BenchmarkClusterEvents measures raw event throughput on the
// single-threaded engine — the number the cluster_sim BENCH row and its CI
// floor track. One op is one full fleet run; the custom metric is
// events/sec.
func BenchmarkClusterEvents(b *testing.B) {
	ctx := context.Background()
	prev := parallel.SetSequential(true)
	defer parallel.SetSequential(prev)
	opts := testOptions(b, 1000, 42)
	sim, err := NewSimulator(ctx, opts)
	if err != nil {
		b.Fatal(err)
	}
	var m Metrics
	if err := sim.RunInto(ctx, &m); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.RunInto(ctx, &m); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(m.Events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}
