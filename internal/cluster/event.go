package cluster

// The event layer of the discrete-event engine: pooled, intrusively-linked
// event records ordered by an indexed binary heap.
//
// Throughput discipline (DESIGN.md §12): the event loop is the hot path of
// every fleet question this repo can now ask, so the queue is engineered
// for zero steady-state allocations. Event records come from a free list
// threaded through the records themselves (the `next` pointer is the
// intrusive link); the heap stores record pointers and each record carries
// its own heap index, so membership updates are O(1) and a future
// cancel/reschedule never needs a search. A shard never holds more than
// one arrival plus one completion per GPU, so both the pool and the heap
// reach their high-water mark during warm-up and are quiescent after.

// eventKind discriminates the two event types of the M/G/1-per-GPU model.
type eventKind uint8

const (
	// evArrival is the next job arrival of one GPU's workload stream.
	evArrival eventKind = iota
	// evCompletion is the in-service job finishing on one GPU.
	evCompletion
)

// event is one pooled event record. While pooled it is linked through next;
// while queued it carries its heap position in hi.
type event struct {
	at   float64 // simulated seconds
	gpu  int32   // index into the shard's GPU slice
	kind eventKind

	// job payload (arrival: the arriving job; completion: the job in
	// service, denormalized so completion handling never touches the queue).
	class    int32
	arrival  float64 // job arrival time, seconds
	deadline float64 // absolute deadline, seconds

	hi   int    // current heap index, -1 when not queued
	next *event // free-list link
}

// eventPool is the intrusive free list. Records are recycled immediately
// after dispatch, so a run allocates at most poolHighWater records total.
type eventPool struct {
	free *event
}

// get returns a recycled record, or a fresh one when the pool is dry
// (warm-up only, in steady state every get is preceded by a put).
//
//gpower:noalloc steady-state gets pop the free list; only a dry pool allocates
func (p *eventPool) get() *event {
	if e := p.free; e != nil {
		p.free = e.next
		e.next = nil
		return e
	}
	//gpower:allocs warm-up only: the pool is dry until the first put, then every get recycles
	return &event{hi: -1}
}

// put recycles a record.
//
//gpower:noalloc recycling is three pointer writes
func (p *eventPool) put(e *event) {
	e.next = p.free
	e.hi = -1
	p.free = e
}

// eventHeap is an indexed binary min-heap over event records. The ordering
// is the engine's total event order: time first, then GPU index, then kind
// (completions before arrivals at identical timestamps, so a job frees its
// GPU before the next job lands on the queue). The GPU tie-break keeps the
// pop sequence a strict total order within a shard — per-GPU results never
// depend on it (GPUs are independent), but a deterministic heap keeps the
// serial event trace reproducible byte for byte.
type eventHeap struct {
	items []*event
}

// less is the total event order.
func (h *eventHeap) less(a, b *event) bool {
	if a.at != b.at { //lint:ignore floateq total-order tie-break: only bitwise-equal timestamps may fall through to the GPU/kind tie-break, or the event order loses reproducibility
		return a.at < b.at
	}
	if a.gpu != b.gpu {
		return a.gpu < b.gpu
	}
	return a.kind > b.kind // evCompletion (1) dispatches before evArrival (0)
}

// push queues e.
//
//gpower:noalloc grow() pre-sizes the backing array; steady-state pushes reuse it
func (h *eventHeap) push(e *event) {
	e.hi = len(h.items)
	//gpower:allocs warm-up only: grow() pre-sizes past the high-water mark, so steady-state appends stay in capacity
	h.items = append(h.items, e)
	h.siftUp(e.hi)
}

// pop removes and returns the minimum event, or nil when empty.
//
//gpower:noalloc popping shrinks the slice in place and re-sifts
func (h *eventHeap) pop() *event {
	n := len(h.items)
	if n == 0 {
		return nil
	}
	top := h.items[0]
	last := h.items[n-1]
	h.items = h.items[:n-1]
	if n > 1 {
		h.items[0] = last
		last.hi = 0
		h.siftDown(0)
	}
	top.hi = -1
	return top
}

// len reports the queue length.
func (h *eventHeap) len() int { return len(h.items) }

// grow pre-sizes the backing array so steady-state pushes never reallocate.
func (h *eventHeap) grow(capacity int) {
	if cap(h.items) < capacity {
		items := make([]*event, len(h.items), capacity)
		copy(items, h.items)
		h.items = items
	}
}

func (h *eventHeap) siftUp(i int) {
	e := h.items[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := h.items[parent]
		if !h.less(e, p) {
			break
		}
		h.items[i] = p
		p.hi = i
		i = parent
	}
	h.items[i] = e
	e.hi = i
}

func (h *eventHeap) siftDown(i int) {
	e := h.items[i]
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			child = right
		}
		c := h.items[child]
		if !h.less(c, e) {
			break
		}
		h.items[i] = c
		c.hi = i
		i = child
	}
	h.items[i] = e
	e.hi = i
}
