package cluster

import (
	"fmt"
	"math"
)

// Workload generation: reproducible per-GPU arrival streams.
//
// Every GPU owns a splitmix64 stream seeded from (fleet seed, GPU index),
// so a GPU's entire random history — interarrival gaps, kernel classes,
// deadline slacks — is a pure function of the seed and the GPU index,
// independent of how GPUs are sharded across workers. That independence is
// what makes the parallel engine bitwise-identical to the serial one: the
// schedule can interleave GPUs any way it likes without perturbing a single
// draw.

// prng is a splitmix64 generator — 64-bit state, one multiply-xor-shift
// avalanche per draw, passes the usual batteries and costs ~1 ns. It is
// deliberately not math/rand: the stream must be stable across Go releases
// for the committed experiment numbers to stay reproducible.
type prng struct {
	state uint64
}

// newPRNG derives the stream for one GPU. The golden-ratio increment keeps
// adjacent GPU indices in distant regions of the state space.
func newPRNG(seed, stream uint64) prng {
	p := prng{state: seed ^ (stream+1)*0x9e3779b97f4a7c15}
	// One warm-up draw decorrelates streams whose xor'd seeds are close.
	p.next()
	return p
}

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (p *prng) float64() float64 {
	return float64(p.next()>>11) / (1 << 53)
}

// uniform returns a uniform draw in [lo, hi).
func (p *prng) uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*p.float64()
}

// exp returns an exponential draw with the given rate (mean 1/rate).
func (p *prng) exp(rate float64) float64 {
	// 1-u keeps the argument in (0, 1] so Log never sees zero.
	return -math.Log(1-p.float64()) / rate
}

// norm returns a standard normal draw (Marsaglia polar method). The
// rejection loop is deterministic: it consumes draws from this stream only.
func (p *prng) norm() float64 {
	for {
		u := 2*p.float64() - 1
		v := 2*p.float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 { //lint:ignore floateq rejection guard: s==0 only for the exact double-zero draw, where the polar transform is undefined
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// gamma returns a Gamma(shape, scale) draw (Marsaglia–Tsang, with the
// standard boost for shape < 1).
func (p *prng) gamma(shape, scale float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^{1/a}.
		u := p.float64()
		return p.gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := p.norm()
		t := 1 + c*x
		if t <= 0 {
			continue
		}
		v := t * t * t
		u := p.float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Process selects the arrival process of the workload stream.
type Process int

const (
	// Poisson arrivals: exponential interarrival gaps at RatePerGPU.
	Poisson Process = iota
	// GammaArrivals: Gamma-renewal interarrival gaps with coefficient of
	// variation CV (CV > 1 is burstier than Poisson, CV < 1 smoother;
	// CV = 1 degenerates to Poisson).
	GammaArrivals
	// Diurnal: a nonhomogeneous Poisson stream whose rate swings
	// sinusoidally around RatePerGPU — the day/night traffic shape —
	// realized by thinning against the peak rate.
	Diurnal
)

func (p Process) String() string {
	switch p {
	case Poisson:
		return "poisson"
	case GammaArrivals:
		return "gamma"
	case Diurnal:
		return "diurnal"
	default:
		// Exhaustive default: an out-of-range value still prints something
		// diagnosable rather than an empty string.
		return fmt.Sprintf("unknown(%d)", int(p))
	}
}

// Workload describes one GPU's job stream. Every GPU in the fleet draws an
// independent stream with these parameters from its own seeded substream.
type Workload struct {
	Process Process

	// RatePerGPU is the mean arrival rate per GPU, jobs/second.
	RatePerGPU float64

	// CV is the interarrival coefficient of variation for GammaArrivals
	// (ignored otherwise). 1 reproduces Poisson.
	CV float64

	// DiurnalAmplitude (0 ≤ A < 1) and DiurnalPeriod (seconds) shape the
	// Diurnal rate λ(t) = RatePerGPU · (1 + A·sin(2πt/Period)).
	DiurnalAmplitude float64
	DiurnalPeriod    float64

	// SlackMin/SlackMax bound the per-job deadline slack: the deadline is
	// arrival + slack × (reference service time of the job's class on its
	// GPU), slack drawn uniformly. SlackMin must exceed 1 or every job is
	// born late even on an idle fleet.
	SlackMin float64
	SlackMax float64
}

// validate checks the workload parameters.
func (w *Workload) validate() error {
	if w.RatePerGPU <= 0 {
		return fmt.Errorf("cluster: RatePerGPU %g must be positive", w.RatePerGPU)
	}
	if w.Process == GammaArrivals && w.CV <= 0 {
		return fmt.Errorf("cluster: gamma arrivals need CV > 0, got %g", w.CV)
	}
	if w.Process == Diurnal {
		if w.DiurnalAmplitude < 0 || w.DiurnalAmplitude >= 1 {
			return fmt.Errorf("cluster: diurnal amplitude %g outside [0, 1)", w.DiurnalAmplitude)
		}
		if w.DiurnalPeriod <= 0 {
			return fmt.Errorf("cluster: diurnal period %g must be positive", w.DiurnalPeriod)
		}
	}
	if w.SlackMin <= 1 || w.SlackMax < w.SlackMin {
		return fmt.Errorf("cluster: deadline slack [%g, %g] must satisfy 1 < min <= max", w.SlackMin, w.SlackMax)
	}
	return nil
}

// nextArrival draws the next arrival time after now from one GPU's stream.
func (w *Workload) nextArrival(r *prng, now float64) float64 {
	switch w.Process {
	case GammaArrivals:
		// Shape k = 1/CV², scale θ = CV²/rate keeps the mean at 1/rate.
		k := 1 / (w.CV * w.CV)
		return now + r.gamma(k, w.CV*w.CV/w.RatePerGPU)
	case Diurnal:
		// Thinning (Lewis–Shedler): candidates at the peak rate, accepted
		// with probability λ(t)/λmax. Draw order is fixed (gap, then
		// accept), so the stream is reproducible.
		peak := w.RatePerGPU * (1 + w.DiurnalAmplitude)
		t := now
		for {
			t += r.exp(peak)
			rate := w.RatePerGPU * (1 + w.DiurnalAmplitude*math.Sin(2*math.Pi*t/w.DiurnalPeriod))
			if r.float64()*peak <= rate {
				return t
			}
		}
	default: // Poisson
		return now + r.exp(w.RatePerGPU)
	}
}

// drawClass picks a kernel class index by cumulative weight (cum is the
// prefix-sum of Options.Classes weights, fixed in class order).
func drawClass(r *prng, cum []float64) int32 {
	u := r.float64() * cum[len(cum)-1]
	for i, c := range cum {
		if u < c {
			return int32(i)
		}
	}
	return int32(len(cum) - 1)
}
