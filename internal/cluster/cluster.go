// Package cluster is a discrete-event simulation of a GPU fleet serving job
// streams under model-driven DVFS (DESIGN.md §12).
//
// The paper fits a multi-domain voltage-frequency power model to one GPU;
// this package asks the fleet-scale question the model exists to answer:
// across hundreds to thousands of GPUs serving real traffic, what do
// model-driven per-job operating-point decisions buy over static clocks, in
// energy, deadline misses and latency? Each GPU is an independent
// single-server FIFO queue; jobs arrive from seeded stochastic streams
// (Poisson, Gamma-renewal, diurnal), carry a kernel class and a deadline,
// and execute against the fitted power model at whatever operating point the
// active policy chooses. Power integrates to energy; completions feed a
// log-binned latency histogram.
//
// The engine is built for raw event throughput — millions of events per
// second on one core:
//
//   - Pooled, intrusively-linked event records on an indexed binary heap
//     (event.go): zero steady-state allocations, pinned by AllocsPerRun.
//   - Governor decisions resolved once per (device model, kernel class)
//     through the generation-keyed DecisionCache (decision.go), so the
//     event loop's dispatch cost is array indexing, not a ladder scan.
//   - Per-GPU splitmix64 substreams (workload.go), so each GPU's history is
//     independent of sharding, and parallel runs — GPUs sharded across
//     internal/parallel workers, per-GPU accumulators folded in GPU index
//     order — are bitwise-identical to the serial engine
//     (GPUPOWER_SEQUENTIAL=1 is the oracle, as everywhere in this repo).
package cluster

import (
	"context"
	"fmt"
	"math"

	"gpupower/internal/backend"
	"gpupower/internal/core"
	"gpupower/internal/governor"
	"gpupower/internal/hw"
	"gpupower/internal/parallel"
)

// KernelClass is one class of the fleet's job mix — a named workload shape
// drawn with the given weight. The per-device realization (utilization
// vector and reference service time) lives in DeviceModel.Classes, index
// aligned with Options.Classes.
type KernelClass struct {
	Name   string
	Weight float64
}

// DeviceClass is a kernel class as it runs on one device model: the
// utilization vector the power model consumes and the class's service time
// at the device's reference clocks.
type DeviceClass struct {
	Util       core.Utilization
	RefSeconds float64
}

// DeviceModel is one device type in the fleet: the hardware description, a
// model fitted on it, and the per-class realizations (index-aligned with
// Options.Classes). GPU g uses Fleet[g % len(Fleet)].
type DeviceModel struct {
	Device  *hw.Device
	Model   *core.Model
	Classes []DeviceClass
}

// Policy selects how GPUs pick operating points.
type Policy int

const (
	// Static runs every job at the device's reference clocks — the
	// no-DVFS baseline.
	Static Policy = iota
	// ModelDVFS picks, per (device model, kernel class), the governor-policy
	// optimum over the predicted ladder, bounded by Options.MaxStretch;
	// decisions come from the generation-keyed DecisionCache.
	ModelDVFS
	// Oracle picks, per job, the minimum-energy ladder point that still
	// meets the job's deadline given the queue state at dispatch — a
	// greedy per-job bound on what deadline-aware DVFS can save. It may
	// stretch jobs to their full slack, so it saves more energy than
	// ModelDVFS but can queue-delay (and miss) more deadlines.
	Oracle
)

func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case ModelDVFS:
		return "model-dvfs"
	case Oracle:
		return "oracle"
	default:
		// Exhaustive default: an out-of-range value still prints something
		// diagnosable rather than an empty string.
		return fmt.Sprintf("unknown(%d)", int(p))
	}
}

// Options configures one fleet simulation.
type Options struct {
	// GPUs is the fleet size; GPU g is a Fleet[g % len(Fleet)] device.
	GPUs int
	// HorizonSeconds is the arrival window. Jobs stop arriving at the
	// horizon; queued work drains to completion (the run ends when the last
	// completion dispatches).
	HorizonSeconds float64
	// Seed is the fleet seed; GPU g draws from substream (Seed, g).
	Seed uint64

	Fleet    []DeviceModel
	Classes  []KernelClass
	Workload Workload

	// Policy selects the operating-point discipline; Governor is the
	// objective ModelDVFS optimizes (MinEnergy, MinEDP, MaxPerfUnderCap).
	Policy   Policy
	Governor governor.Policy

	// PowerCapW caps per-GPU predicted power for ModelDVFS and Oracle
	// decisions; ≤ 0 means each device's TDP.
	PowerCapW float64
	// MaxStretch bounds ModelDVFS slowdown: ladder points predicted to run
	// more than MaxStretch× the reference time are rejected. ≤ 0 means
	// unbounded. Set it at or below the workload's SlackMin or the policy
	// plans to miss deadlines even on idle GPUs.
	MaxStretch float64
}

// validate checks the options.
func (o *Options) validate() error {
	if o.GPUs < 1 {
		return fmt.Errorf("cluster: fleet size %d must be >= 1", o.GPUs)
	}
	if o.HorizonSeconds <= 0 {
		return fmt.Errorf("cluster: horizon %g s must be positive", o.HorizonSeconds)
	}
	if len(o.Fleet) == 0 {
		return fmt.Errorf("cluster: empty fleet")
	}
	if len(o.Classes) == 0 {
		return fmt.Errorf("cluster: no kernel classes")
	}
	for i, c := range o.Classes {
		if c.Weight <= 0 {
			return fmt.Errorf("cluster: class %q (index %d) weight %g must be positive", c.Name, i, c.Weight)
		}
	}
	for i := range o.Fleet {
		dm := &o.Fleet[i]
		if dm.Device == nil || dm.Model == nil {
			return fmt.Errorf("cluster: fleet entry %d missing device or model", i)
		}
		if dm.Model.DeviceName != dm.Device.Name {
			return fmt.Errorf("cluster: fleet entry %d pairs a model fitted on %q with device %q",
				i, dm.Model.DeviceName, dm.Device.Name)
		}
		if len(dm.Classes) != len(o.Classes) {
			return fmt.Errorf("cluster: fleet entry %d (%s) realizes %d classes, want %d",
				i, dm.Device.Name, len(dm.Classes), len(o.Classes))
		}
		for j, dc := range dm.Classes {
			if dc.RefSeconds <= 0 {
				return fmt.Errorf("cluster: fleet entry %d (%s) class %q reference time %g s must be positive",
					i, dm.Device.Name, o.Classes[j].Name, dc.RefSeconds)
			}
		}
	}
	switch o.Policy {
	case Static, ModelDVFS, Oracle:
	default:
		return fmt.Errorf("cluster: unknown policy %v", o.Policy)
	}
	return o.Workload.validate()
}

// Metrics are the fleet-level outcomes of one run. Every field is a pure
// function of (Options, Seed): the accumulators are folded in GPU index
// order, so serial and parallel runs produce bitwise-identical Metrics.
type Metrics struct {
	GPUs   int
	Events int64 // dispatched simulation events (arrivals + completions)

	Jobs     int64
	Missed   int64
	MissRate float64

	EnergyJ   float64
	AvgPowerW float64 // fleet energy over summed per-GPU simulated spans

	BusySeconds float64 // summed service time across the fleet
	GPUSeconds  float64 // summed per-GPU simulated spans (≥ GPUs × horizon)
	Utilization float64 // BusySeconds / GPUSeconds

	P50Seconds float64 // sojourn-time quantiles (arrival → completion)
	P99Seconds float64

	JobsPerSecond float64 // completed jobs over the arrival horizon
	SimEndSeconds float64 // last completion across the fleet

	// TraceHash digests every dispatched event (kind, bitwise time, class)
	// per GPU, chained in GPU index order — the equality witness the
	// determinism tests compare.
	TraceHash uint64
}

// classRuntime is one kernel class resolved onto one device model: the
// memoized surface, the reference service time, and — for Static and
// ModelDVFS, where the operating point is fixed per class — the dispatched
// power draw and service length.
type classRuntime struct {
	surf       *core.Surface
	refSeconds float64
	powerW     float64
	serviceSec float64
}

// deviceRuntime is one fleet device model resolved for the run.
type deviceRuntime struct {
	dev        *hw.Device
	capW       float64
	idlePowerW float64
	classes    []classRuntime
}

// buildRuntimes resolves surfaces, governor decisions and idle power for
// every (device model, kernel class) pair — all model evaluation the run
// needs, hoisted out of the event loop. Decisions ride the process-wide
// DecisionCache, so a second run (another policy knob, another seed) skips
// the ladder scans entirely.
func buildRuntimes(ctx context.Context, o *Options) ([]deviceRuntime, error) {
	rts := make([]deviceRuntime, len(o.Fleet))
	for i := range o.Fleet {
		dm := &o.Fleet[i]
		rt := &rts[i]
		rt.dev = dm.Device
		rt.capW = o.PowerCapW
		if rt.capW <= 0 {
			rt.capW = dm.Device.TDP
		}
		ref := dm.Model.Ref

		// Idle draw: the model at zero utilization — at reference clocks for
		// Static (no DVFS anywhere), at the predicted-cheapest ladder point
		// for the DVFS policies (an idle GPU parks at its floor).
		idleSurf, err := core.Surfaces.Get(ctx, dm.Model, dm.Device, ref, core.Utilization{})
		if err != nil {
			return nil, fmt.Errorf("cluster: %s idle surface: %w", dm.Device.Name, err)
		}
		if o.Policy == Static {
			ri, ok := idleSurf.Point(ref)
			if !ok {
				return nil, fmt.Errorf("cluster: %s reference %.0f/%.0f MHz is not a ladder point",
					dm.Device.Name, ref.CoreMHz, ref.MemMHz)
			}
			rt.idlePowerW = idleSurf.PowerW[ri]
		} else {
			min := -1
			for k := 0; k < idleSurf.Len(); k++ {
				if min < 0 || idleSurf.PowerW[k] < idleSurf.PowerW[min] {
					min = k
				}
			}
			rt.idlePowerW = idleSurf.PowerW[min]
		}

		rt.classes = make([]classRuntime, len(dm.Classes))
		for j := range dm.Classes {
			dc := &dm.Classes[j]
			cr := &rt.classes[j]
			cr.refSeconds = dc.RefSeconds
			surf, err := core.Surfaces.Get(ctx, dm.Model, dm.Device, ref, dc.Util)
			if err != nil {
				return nil, fmt.Errorf("cluster: %s class %q surface: %w", dm.Device.Name, o.Classes[j].Name, err)
			}
			cr.surf = surf
			switch o.Policy {
			case Static:
				ri, ok := surf.Point(ref)
				if !ok {
					return nil, fmt.Errorf("cluster: %s reference %.0f/%.0f MHz is not a ladder point",
						dm.Device.Name, ref.CoreMHz, ref.MemMHz)
				}
				cr.powerW = surf.PowerW[ri]
				cr.serviceSec = dc.RefSeconds * surf.RelTime[ri]
			case ModelDVFS:
				d, err := Decisions.Get(surf, o.Governor, rt.capW, o.MaxStretch)
				if err != nil {
					// No point satisfies both cap and stretch: run the
					// fastest cap-feasible point instead of refusing to
					// serve the class.
					d, err = Decisions.Get(surf, governor.MaxPerfUnderCap, rt.capW, 0)
					if err != nil {
						return nil, fmt.Errorf("cluster: %s class %q: %w", dm.Device.Name, o.Classes[j].Name, err)
					}
				}
				cr.powerW = d.PowerW
				cr.serviceSec = dc.RefSeconds * d.RelTime
			case Oracle:
				// Per-job decisions happen at dispatch; require a
				// cap-feasible point now so the event loop cannot fail.
				if _, err := Decisions.Get(surf, governor.MaxPerfUnderCap, rt.capW, 0); err != nil {
					return nil, fmt.Errorf("cluster: %s class %q: %w", dm.Device.Name, o.Classes[j].Name, err)
				}
			}
		}
	}
	return rts, nil
}

// oracleDecide scans a class surface for the cheapest (energy-wise,
// power × relative time) cap-feasible ladder point that completes a job
// dispatched now before its deadline; when no point can, it falls back to
// the fastest cap-feasible point. Strict `<` comparisons keep ties on the
// lowest ladder index, so the scan is deterministic. buildRuntimes
// guarantees at least one cap-feasible point exists.
func oracleDecide(s *core.Surface, refSeconds, now, deadline, capW float64) int {
	best, fastest := -1, -1
	bestE, fastRT := 0.0, 0.0
	for i := 0; i < s.Len(); i++ {
		p := s.PowerW[i]
		if p > capW {
			continue
		}
		rt := s.RelTime[i]
		if fastest < 0 || rt < fastRT {
			fastest, fastRT = i, rt
		}
		if now+refSeconds*rt <= deadline {
			if e := p * rt; best < 0 || e < bestE {
				best, bestE = i, e
			}
		}
	}
	if best >= 0 {
		return best
	}
	return fastest
}

// engine is one shard's event loop: a heap, a pool, and a contiguous range
// of the fleet's GPUs. Engines persist across runs inside a Simulator so
// their buffers amortize to zero steady-state allocations.
type engine struct {
	opts *Options
	cum  []float64 // class cumulative weights (shared, read-only)
	gpus []gpuState
	heap eventHeap
	pool eventPool
}

// run drains the shard: seeds first arrivals, dispatches to quiescence,
// then charges idle energy for each GPU's non-busy span. Cancellation is
// checked every 64 Ki events — cheap enough to be invisible, frequent
// enough that a fleet-year simulation dies promptly.
func (en *engine) run(ctx context.Context) error {
	horizon := en.opts.HorizonSeconds
	// Recycle anything a canceled previous run left queued.
	for {
		e := en.heap.pop()
		if e == nil {
			break
		}
		en.pool.put(e)
	}
	//gpower:allocs warm-up only: the heap is pre-sized to the shard's event high-water mark on the first run, then reruns reuse it
	en.heap.grow(2*len(en.gpus) + 1)
	for i := range en.gpus {
		g := &en.gpus[i]
		g.idx = int32(i)
		if t := en.opts.Workload.nextArrival(&g.rng, 0); t < horizon {
			e := en.pool.get()
			e.at, e.gpu, e.kind = t, g.idx, evArrival
			en.heap.push(e)
		}
	}
	var dispatched int64
	for {
		e := en.heap.pop()
		if e == nil {
			break
		}
		if dispatched++; dispatched&0xFFFF == 0 {
			if err := backend.CheckContext(ctx, "cluster: event loop"); err != nil {
				return err
			}
		}
		g := &en.gpus[e.gpu]
		if e.kind == evArrival {
			en.onArrival(g, e)
		} else {
			en.onCompletion(g, e)
		}
	}
	for i := range en.gpus {
		g := &en.gpus[i]
		end := horizon
		if g.m.endAt > end {
			end = g.m.endAt
		}
		if idle := end - g.m.busySec; idle > 0 {
			g.m.energyJ += g.rt.idlePowerW * idle
		}
		g.m.endAt = end
	}
	return nil
}

// onArrival synthesizes the arriving job from the GPU's stream (class, then
// deadline slack — the draw order is part of the reproducible contract),
// queues or starts it, and reschedules the GPU's next arrival on the same
// event record.
func (en *engine) onArrival(g *gpuState, e *event) {
	g.m.events++
	h := fnvMix(g.m.traceHash, uint64(evArrival))
	g.m.traceHash = fnvMix(h, math.Float64bits(e.at))

	cls := drawClass(&g.rng, en.cum)
	slack := g.rng.uniform(en.opts.Workload.SlackMin, en.opts.Workload.SlackMax)
	j := job{
		class:    cls,
		arrival:  e.at,
		deadline: e.at + slack*g.rt.classes[cls].refSeconds,
	}
	if g.busy {
		g.queue.push(j)
	} else {
		en.start(g, j, e.at)
	}

	if t := en.opts.Workload.nextArrival(&g.rng, e.at); t < en.opts.HorizonSeconds {
		e.at = t
		en.heap.push(e)
	} else {
		en.pool.put(e)
	}
}

// start dispatches a job on an idle GPU: the policy fixes the operating
// point (and with it power draw and service length) and the completion
// event is scheduled. Static and ModelDVFS read the precomputed per-class
// decision; Oracle scans the surface per job against the deadline.
func (en *engine) start(g *gpuState, j job, now float64) {
	cr := &g.rt.classes[j.class]
	if en.opts.Policy == Oracle {
		i := oracleDecide(cr.surf, cr.refSeconds, now, j.deadline, g.rt.capW)
		g.curPowerW = cr.surf.PowerW[i]
		g.curService = cr.refSeconds * cr.surf.RelTime[i]
	} else {
		g.curPowerW = cr.powerW
		g.curService = cr.serviceSec
	}
	g.busy = true
	e := en.pool.get()
	e.at = now + g.curService
	e.gpu = g.idx
	e.kind = evCompletion
	e.class = j.class
	e.arrival = j.arrival
	e.deadline = j.deadline
	en.heap.push(e)
}

// onCompletion retires the job in service — energy, busy time, deadline
// verdict, sojourn latency — and starts the next queued job at the same
// timestamp, if any.
func (en *engine) onCompletion(g *gpuState, e *event) {
	g.m.events++
	h := fnvMix(g.m.traceHash, uint64(evCompletion))
	h = fnvMix(h, math.Float64bits(e.at))
	g.m.traceHash = fnvMix(h, uint64(e.class))

	finish := e.at
	g.m.jobs++
	if finish > e.deadline {
		g.m.missed++
	}
	g.m.energyJ += g.curPowerW * g.curService
	g.m.busySec += g.curService
	g.m.hist.add(finish - e.arrival)
	if finish > g.m.endAt {
		g.m.endAt = finish
	}
	en.pool.put(e)
	if g.queue.n > 0 {
		en.start(g, g.queue.pop(), finish)
	} else {
		g.busy = false
	}
}

// Simulator is a reusable fleet simulation: runtimes resolved once, GPU and
// engine buffers retained across runs. Re-running (the benchmark loop, the
// events/sec measurement) performs no steady-state allocation beyond the
// returned Metrics — use RunInto to eliminate that one too.
type Simulator struct {
	opts    Options
	rts     []deviceRuntime
	cum     []float64
	gpus    []gpuState
	engines []engine
	merged  latHist
}

// NewSimulator validates the options and resolves every model evaluation
// the run will need. The Options value is copied; the Fleet/Classes slices
// are referenced and must not be mutated while the simulator lives.
func NewSimulator(ctx context.Context, opts *Options) (*Simulator, error) {
	if opts == nil {
		return nil, fmt.Errorf("cluster: nil options")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	rts, err := buildRuntimes(ctx, opts)
	if err != nil {
		return nil, err
	}
	cum := make([]float64, len(opts.Classes))
	sum := 0.0
	for i, c := range opts.Classes {
		sum += c.Weight
		cum[i] = sum
	}
	return &Simulator{
		opts: *opts,
		rts:  rts,
		cum:  cum,
		gpus: make([]gpuState, opts.GPUs),
	}, nil
}

// Run simulates the fleet and returns its metrics.
func (s *Simulator) Run(ctx context.Context) (*Metrics, error) {
	m := &Metrics{}
	if err := s.RunInto(ctx, m); err != nil {
		return nil, err
	}
	return m, nil
}

// RunInto is Run writing into a caller-owned Metrics — the allocation-free
// steady state the zero-alloc test pins. GPUs are sharded contiguously
// across the parallel pool; each shard owns its GPU range, its heap and its
// pool, and the fold below consumes the per-GPU accumulators strictly in
// GPU index order, so worker count and scheduling cannot perturb a bit.
//
//gpower:noalloc the zero-alloc test pins the single-shard steady state; multi-shard fan-out and warm-up growth are hatched below
func (s *Simulator) RunInto(ctx context.Context, m *Metrics) error {
	o := &s.opts
	for i := range s.gpus {
		s.gpus[i].reset(&s.rts[i%len(s.rts)], o.Seed, i)
	}
	shards := parallel.Workers()
	if shards > len(s.gpus) {
		shards = len(s.gpus)
	}
	for len(s.engines) < shards {
		//gpower:allocs warm-up only: the engine shard slice grows to the worker count once, then reruns reuse it
		s.engines = append(s.engines, engine{})
	}
	if shards == 1 {
		// Single-shard (sequential-mode) path, inlined so the steady state
		// allocates nothing — the fan-out closure below escapes and would
		// cost one heap allocation per run.
		en := &s.engines[0]
		en.opts, en.cum = o, s.cum
		en.gpus = s.gpus
		if err := en.run(ctx); err != nil {
			return err
		}
	} else {
		// Contiguous ranges: shard k owns GPUs [k·size, min((k+1)·size, GPUs)).
		size := (len(s.gpus) + shards - 1) / shards
		//gpower:allocs multi-shard fan-out: the shard closure and worker pool cost a handful of allocations per run; the single-shard path above is the allocation-free one the test pins
		err := parallel.ForEach(shards, func(k int) error {
			lo := k * size
			hi := lo + size
			if hi > len(s.gpus) {
				hi = len(s.gpus)
			}
			en := &s.engines[k]
			en.opts, en.cum = o, s.cum
			en.gpus = s.gpus[lo:hi]
			return en.run(ctx)
		})
		if err != nil {
			return err
		}
	}

	// Deterministic merge: one pass over the fleet in GPU index order. The
	// floating-point folds and the trace-hash chain are associated exactly
	// as the serial engine associates them.
	*m = Metrics{GPUs: len(s.gpus), TraceHash: fnvOffset64}
	s.merged = latHist{}
	for i := range s.gpus {
		gm := &s.gpus[i].m
		m.Events += gm.events
		m.Jobs += gm.jobs
		m.Missed += gm.missed
		m.EnergyJ += gm.energyJ
		m.BusySeconds += gm.busySec
		m.GPUSeconds += gm.endAt
		if gm.endAt > m.SimEndSeconds {
			m.SimEndSeconds = gm.endAt
		}
		s.merged.merge(&gm.hist)
		m.TraceHash = fnvMix(m.TraceHash, gm.traceHash)
	}
	if m.Jobs > 0 {
		m.MissRate = float64(m.Missed) / float64(m.Jobs)
	}
	if m.GPUSeconds > 0 {
		m.AvgPowerW = m.EnergyJ / m.GPUSeconds
		m.Utilization = m.BusySeconds / m.GPUSeconds
	}
	m.P50Seconds = s.merged.quantile(0.50)
	m.P99Seconds = s.merged.quantile(0.99)
	m.JobsPerSecond = float64(m.Jobs) / o.HorizonSeconds
	return nil
}

// Run simulates a fleet in one call — NewSimulator plus one Run.
func Run(ctx context.Context, opts *Options) (*Metrics, error) {
	sim, err := NewSimulator(ctx, opts)
	if err != nil {
		return nil, err
	}
	return sim.Run(ctx)
}
