package kernels

import (
	"testing"

	"gpupower/internal/hw"
)

func valid() *KernelSpec {
	return &KernelSpec{
		Name: "k",
		WarpInstrs: map[hw.Component]float64{
			hw.SP: 100, hw.Int: 50,
		},
		SharedLoadBytes: 10, SharedStoreBytes: 10,
		L2ReadBytes: 20, L2WriteBytes: 5,
		DRAMReadBytes: 20, DRAMWriteBytes: 5,
		FixedCycles:     100,
		StallSeconds:    1e-5,
		IssueEfficiency: 0.9,
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(k *KernelSpec){
		"empty name":        func(k *KernelSpec) { k.Name = "" },
		"zero efficiency":   func(k *KernelSpec) { k.IssueEfficiency = 0 },
		"eff > 1":           func(k *KernelSpec) { k.IssueEfficiency = 1.5 },
		"negative warps":    func(k *KernelSpec) { k.WarpInstrs[hw.SP] = -1 },
		"memory as unit":    func(k *KernelSpec) { k.WarpInstrs[hw.DRAM] = 10 },
		"negative bytes":    func(k *KernelSpec) { k.L2ReadBytes = -5 },
		"negative stall":    func(k *KernelSpec) { k.StallSeconds = -1 },
		"negative fixed":    func(k *KernelSpec) { k.FixedCycles = -1 },
		"invalid component": func(k *KernelSpec) { k.WarpInstrs[hw.Component(42)] = 1 },
	}
	for name, mod := range cases {
		k := valid()
		mod(k)
		if err := k.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestValidateRejectsEmptyKernel(t *testing.T) {
	k := &KernelSpec{Name: "empty", IssueEfficiency: 1}
	if err := k.Validate(); err == nil {
		t.Fatal("kernel with no work accepted")
	}
	// Fixed cycles alone is legal (the Idle pseudo-benchmark).
	k.FixedCycles = 100
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	k := valid()
	if k.Warp(hw.SP) != 100 || k.Warp(hw.DP) != 0 {
		t.Fatal("Warp accessor wrong")
	}
	if k.SharedBytes() != 20 || k.L2Bytes() != 25 || k.DRAMBytes() != 25 {
		t.Fatal("byte accessors wrong")
	}
}

func TestScale(t *testing.T) {
	k := valid()
	s, err := k.Scale(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Warp(hw.SP) != 200 || s.L2ReadBytes != 40 || s.FixedCycles != 200 || s.StallSeconds != 2e-5 {
		t.Fatal("Scale did not multiply all quantities")
	}
	// Original untouched.
	if k.Warp(hw.SP) != 100 {
		t.Fatal("Scale mutated the original")
	}
	if _, err := k.Scale(0); err == nil {
		t.Fatal("zero factor accepted")
	}
	if _, err := k.Scale(-1); err == nil {
		t.Fatal("negative factor accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	k := valid()
	c := k.Clone()
	c.WarpInstrs[hw.SP] = 999
	c.L2ReadBytes = 999
	if k.Warp(hw.SP) != 100 || k.L2ReadBytes != 20 {
		t.Fatal("Clone shares state")
	}
}

func TestApp(t *testing.T) {
	app := &App{Name: "a", Kernels: []*KernelSpec{valid(), valid()}}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&App{Name: "empty"}).Validate(); err == nil {
		t.Fatal("app without kernels accepted")
	}
	if err := (&App{Kernels: []*KernelSpec{valid()}}).Validate(); err == nil {
		t.Fatal("unnamed app accepted")
	}
	bad := valid()
	bad.IssueEfficiency = 0
	if err := (&App{Name: "bad", Kernels: []*KernelSpec{bad}}).Validate(); err == nil {
		t.Fatal("app with invalid kernel accepted")
	}
	single := SingleKernelApp(valid())
	if single.Name != "k" || len(single.Kernels) != 1 {
		t.Fatal("SingleKernelApp wrong")
	}
}
