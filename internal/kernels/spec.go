// Package kernels defines the behavioural descriptor of a CUDA kernel used
// throughout the reproduction. On real hardware the paper characterizes a
// kernel through CUPTI performance events; here a kernel is described by the
// work it presents to each GPU component (warp instructions per execution
// unit, bytes moved at each memory level). The simulator's timing model turns
// a descriptor into execution time, per-component utilizations and events —
// the same observables the paper measures.
package kernels

import (
	"fmt"

	"gpupower/internal/hw"
)

// KernelSpec describes one kernel launch.
//
// Quantities are totals for a single launch across the whole device. The
// descriptor corresponds to what the paper's microbenchmark source choices
// control: the instruction mix per loop iteration, the iteration count N
// (arithmetic intensity) and the memory traffic.
type KernelSpec struct {
	Name string

	// WarpInstrs is the number of warp instructions issued to each compute
	// unit class (Int, SP, DP, SF) over the launch.
	WarpInstrs map[hw.Component]float64

	// Shared memory traffic in bytes (loads and stores counted separately so
	// the CUPTI shared_ld/st transaction events can be produced).
	SharedLoadBytes  float64
	SharedStoreBytes float64

	// L2 cache traffic in bytes (read/write sector queries derive from it).
	L2ReadBytes  float64
	L2WriteBytes float64

	// Device-memory traffic in bytes (fb read/write sectors derive from it).
	DRAMReadBytes  float64
	DRAMWriteBytes float64

	// FixedCycles models launch/drain latency and dependency stalls that do
	// not scale with the throughput resources, in core-domain cycles.
	FixedCycles float64

	// StallSeconds models frequency-independent stall time per launch
	// (DRAM access latency that cannot be hidden, PCIe synchronization).
	// Because it scales with neither clock, it makes utilization drift as
	// the configuration moves away from the reference — one of the error
	// sources the paper observes (Fig. 8).
	StallSeconds float64

	// IssueEfficiency ∈ (0, 1] is the fraction of the bottleneck resource's
	// peak throughput the kernel actually sustains (dependency chains, bank
	// conflicts, divergence). The bottleneck component's utilization
	// saturates at this value.
	IssueEfficiency float64
}

// Validate checks the descriptor for physical plausibility.
func (k *KernelSpec) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("kernels: kernel has empty name")
	}
	if k.IssueEfficiency <= 0 || k.IssueEfficiency > 1 {
		return fmt.Errorf("kernels: %s: IssueEfficiency %g outside (0,1]", k.Name, k.IssueEfficiency)
	}
	for c, v := range k.WarpInstrs {
		if !c.Valid() {
			return fmt.Errorf("kernels: %s: invalid component %v", k.Name, c)
		}
		if c == hw.Shared || c == hw.L2 || c == hw.DRAM {
			return fmt.Errorf("kernels: %s: WarpInstrs must target compute units, got %s", k.Name, c)
		}
		if v < 0 {
			return fmt.Errorf("kernels: %s: negative warp instructions for %s", k.Name, c)
		}
	}
	for _, q := range []struct {
		name string
		v    float64
	}{
		{"SharedLoadBytes", k.SharedLoadBytes},
		{"SharedStoreBytes", k.SharedStoreBytes},
		{"L2ReadBytes", k.L2ReadBytes},
		{"L2WriteBytes", k.L2WriteBytes},
		{"DRAMReadBytes", k.DRAMReadBytes},
		{"DRAMWriteBytes", k.DRAMWriteBytes},
		{"FixedCycles", k.FixedCycles},
		{"StallSeconds", k.StallSeconds},
	} {
		if q.v < 0 {
			return fmt.Errorf("kernels: %s: negative %s", k.Name, q.name)
		}
	}
	if k.totalWork() == 0 && k.FixedCycles == 0 { //lint:ignore floateq guard: a descriptor with exactly zero work in every field is invalid; near-zero work is legitimate
		return fmt.Errorf("kernels: %s: kernel does no work", k.Name)
	}
	return nil
}

func (k *KernelSpec) totalWork() float64 {
	// Canonical-order fold: a range-over-map sum here would make the
	// zero-work validation scheduling-dependent at the ulp level.
	return hw.SumComponents(k.WarpInstrs) + k.SharedLoadBytes + k.SharedStoreBytes +
		k.L2ReadBytes + k.L2WriteBytes + k.DRAMReadBytes + k.DRAMWriteBytes
}

// Warp returns the warp-instruction count for unit c (0 when absent).
func (k *KernelSpec) Warp(c hw.Component) float64 { return k.WarpInstrs[c] }

// SharedBytes returns the total shared-memory traffic.
func (k *KernelSpec) SharedBytes() float64 { return k.SharedLoadBytes + k.SharedStoreBytes }

// L2Bytes returns the total L2 traffic.
func (k *KernelSpec) L2Bytes() float64 { return k.L2ReadBytes + k.L2WriteBytes }

// DRAMBytes returns the total device-memory traffic.
func (k *KernelSpec) DRAMBytes() float64 { return k.DRAMReadBytes + k.DRAMWriteBytes }

// Scale returns a copy of the kernel with all work quantities multiplied by
// factor (> 0), e.g. to model a larger input size.
func (k *KernelSpec) Scale(factor float64) (*KernelSpec, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("kernels: %s: scale factor %g must be positive", k.Name, factor)
	}
	out := k.Clone()
	for c := range out.WarpInstrs {
		out.WarpInstrs[c] *= factor
	}
	out.SharedLoadBytes *= factor
	out.SharedStoreBytes *= factor
	out.L2ReadBytes *= factor
	out.L2WriteBytes *= factor
	out.DRAMReadBytes *= factor
	out.DRAMWriteBytes *= factor
	out.FixedCycles *= factor
	out.StallSeconds *= factor
	return out, nil
}

// Clone returns a deep copy of the spec.
func (k *KernelSpec) Clone() *KernelSpec {
	out := *k
	out.WarpInstrs = make(map[hw.Component]float64, len(k.WarpInstrs))
	for c, v := range k.WarpInstrs {
		out.WarpInstrs[c] = v
	}
	return &out
}

// App is an application composed of one or more kernels, as in the paper's
// validation methodology: "for benchmarks with multiple kernels the total
// power consumption was obtained by weighting the consumption of each kernel
// with its relative execution time" (Section V-A).
type App struct {
	Name    string
	Kernels []*KernelSpec
}

// Validate checks the application and all of its kernels.
func (a *App) Validate() error {
	if a == nil {
		return fmt.Errorf("kernels: nil app")
	}
	if a.Name == "" {
		return fmt.Errorf("kernels: app has empty name")
	}
	if len(a.Kernels) == 0 {
		return fmt.Errorf("kernels: app %s has no kernels", a.Name)
	}
	for _, k := range a.Kernels {
		if err := k.Validate(); err != nil {
			return fmt.Errorf("app %s: %w", a.Name, err)
		}
	}
	return nil
}

// SingleKernelApp wraps a kernel as a one-kernel application.
func SingleKernelApp(k *KernelSpec) *App {
	return &App{Name: k.Name, Kernels: []*KernelSpec{k}}
}
