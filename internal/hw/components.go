// Package hw describes the modelled GPU hardware: architectural components,
// voltage-frequency domains, and the three devices of the paper's Table II
// (NVIDIA Titan Xp, GTX Titan X and Tesla K40c).
package hw

import "fmt"

// Component identifies one of the seven GPU components whose utilization the
// model tracks (paper Section III-B).
type Component int

const (
	Int    Component = iota // integer units
	SP                      // single-precision floating-point units
	DP                      // double-precision floating-point units
	SF                      // special-function units
	Shared                  // shared memory
	L2                      // L2 cache
	DRAM                    // device memory
	numComponents
)

// Components lists all modelled components in canonical order.
var Components = []Component{Int, SP, DP, SF, Shared, L2, DRAM}

// ComputeUnits lists the SM execution-unit components (Eq. 8 utilizations).
var ComputeUnits = []Component{Int, SP, DP, SF}

// MemoryLevels lists the memory-hierarchy components (Eq. 9 utilizations).
var MemoryLevels = []Component{Shared, L2, DRAM}

// CoreComponents lists the components clocked by the core (graphics) domain.
// The paper places the L2 cache (and shared memory) in the core domain.
var CoreComponents = []Component{Int, SP, DP, SF, Shared, L2}

func (c Component) String() string {
	switch c {
	case Int:
		return "INT"
	case SP:
		return "SP"
	case DP:
		return "DP"
	case SF:
		return "SF"
	case Shared:
		return "Shared"
	case L2:
		return "L2"
	case DRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Valid reports whether c is one of the modelled components.
func (c Component) Valid() bool { return c >= 0 && c < numComponents }

// SumComponents folds a per-component float map in canonical component
// order. Go randomizes map iteration order and float addition is not
// associative, so a naive range-over-map sum is not bitwise-reproducible
// across runs; every power/work total in the module folds through this
// helper instead (the maporder lint invariant). Keys outside the modelled
// set — which Valid-checked inputs never contain — are ignored.
func SumComponents(m map[Component]float64) float64 {
	var s float64
	for _, c := range Components {
		if v, ok := m[c]; ok {
			s += v
		}
	}
	return s
}

// Domain identifies an independent voltage-frequency domain (paper Eq. 3:
// modern NVIDIA GPUs expose N_V-F = 2 domains).
type Domain int

const (
	CoreDomain Domain = iota
	MemoryDomain
	numDomains
)

// Domains lists both V-F domains in canonical order.
var Domains = []Domain{CoreDomain, MemoryDomain}

func (d Domain) String() string {
	switch d {
	case CoreDomain:
		return "core"
	case MemoryDomain:
		return "memory"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// DomainOf returns the V-F domain that clocks component c.
func DomainOf(c Component) Domain {
	if c == DRAM {
		return MemoryDomain
	}
	return CoreDomain
}
