package hw

import (
	"fmt"
	"time"
)

// The device catalog reproduces the paper's Table II. Core-frequency ladders
// are reconstructed with uniform steps across the published ranges and level
// counts, anchored so the published default clocks are exact ladder entries.

// TitanXp returns the NVIDIA Titan Xp description (Pascal, CC 6.1).
func TitanXp() *Device {
	return &Device{
		Name:              "Titan Xp",
		Arch:              Pascal,
		ComputeCapability: "6.1",
		NumSMs:            30,
		WarpSize:          32,
		UnitsPerSM: map[Component]int{
			Int: 128, SP: 128, DP: 4, SF: 32,
		},
		MemBusBytes:     48,
		SharedBanks:     32,
		L2BytesPerCycle: 1024,
		// 22 levels over [582:1911] MHz; index 13 is the 1404 MHz default.
		CoreFreqs: []float64{
			582, 645, 708, 771, 835, 898, 961, 1024, 1088, 1151, 1214,
			1277, 1341, 1404, 1467, 1531, 1594, 1657, 1721, 1784, 1847, 1911,
		},
		// The NVIDIA driver exposes only the two top memory levels.
		MemFreqs:      []float64{4705, 5705},
		DefaultCore:   1404,
		DefaultMem:    5705,
		TDP:           250,
		SensorRefresh: 35 * time.Millisecond,
	}
}

// GTXTitanX returns the NVIDIA GTX Titan X description (Maxwell, CC 5.2).
func GTXTitanX() *Device {
	return &Device{
		Name:              "GTX Titan X",
		Arch:              Maxwell,
		ComputeCapability: "5.2",
		NumSMs:            24,
		WarpSize:          32,
		UnitsPerSM: map[Component]int{
			Int: 128, SP: 128, DP: 4, SF: 32,
		},
		MemBusBytes:     48,
		SharedBanks:     32,
		L2BytesPerCycle: 768,
		// 16 levels over [595:1164] MHz; index 10 is the 975 MHz default.
		CoreFreqs: []float64{
			595, 633, 671, 709, 747, 785, 823, 861, 899, 937,
			975, 1013, 1051, 1089, 1127, 1164,
		},
		MemFreqs:      []float64{810, 3300, 3505, 4005},
		DefaultCore:   975,
		DefaultMem:    3505,
		TDP:           250,
		SensorRefresh: 100 * time.Millisecond,
	}
}

// TeslaK40c returns the NVIDIA Tesla K40c description (Kepler, CC 3.5).
func TeslaK40c() *Device {
	return &Device{
		Name:              "Tesla K40c",
		Arch:              Kepler,
		ComputeCapability: "3.5",
		NumSMs:            15,
		WarpSize:          32,
		UnitsPerSM: map[Component]int{
			Int: 192, SP: 192, DP: 64, SF: 32,
		},
		MemBusBytes:     48,
		SharedBanks:     32,
		L2BytesPerCycle: 512,
		// 4 application-clock levels over [666:875] MHz, 875 MHz default.
		CoreFreqs:     []float64{666, 745, 810, 875},
		MemFreqs:      []float64{3004}, // single non-idle memory level
		DefaultCore:   875,
		DefaultMem:    3004,
		TDP:           235,
		SensorRefresh: 15 * time.Millisecond,
	}
}

// AllDevices returns the three validated devices in the paper's order
// (Pascal, Maxwell, Kepler).
func AllDevices() []*Device {
	return []*Device{TitanXp(), GTXTitanX(), TeslaK40c()}
}

// DeviceByName looks a device up by its catalog name.
func DeviceByName(name string) (*Device, error) {
	for _, d := range AllDevices() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("hw: unknown device %q (have Titan Xp, GTX Titan X, Tesla K40c)", name)
}
