package hw

import (
	"testing"
	"time"
)

func TestCatalogMatchesTable2(t *testing.T) {
	xp := TitanXp()
	tx := GTXTitanX()
	k40 := TeslaK40c()

	cases := []struct {
		dev        *Device
		arch       Arch
		cc         string
		sms        int
		coreLevels int
		memLevels  int
		defCore    float64
		defMem     float64
		spPerSM    int
		dpPerSM    int
		tdp        float64
		refresh    time.Duration
	}{
		{xp, Pascal, "6.1", 30, 22, 2, 1404, 5705, 128, 4, 250, 35 * time.Millisecond},
		{tx, Maxwell, "5.2", 24, 16, 4, 975, 3505, 128, 4, 250, 100 * time.Millisecond},
		{k40, Kepler, "3.5", 15, 4, 1, 875, 3004, 192, 64, 235, 15 * time.Millisecond},
	}
	for _, c := range cases {
		if err := c.dev.Validate(); err != nil {
			t.Fatalf("%s: %v", c.dev.Name, err)
		}
		if c.dev.Arch != c.arch || c.dev.ComputeCapability != c.cc {
			t.Errorf("%s: arch/cc mismatch", c.dev.Name)
		}
		if c.dev.NumSMs != c.sms {
			t.Errorf("%s: SMs = %d, want %d", c.dev.Name, c.dev.NumSMs, c.sms)
		}
		if len(c.dev.CoreFreqs) != c.coreLevels {
			t.Errorf("%s: core levels = %d, want %d", c.dev.Name, len(c.dev.CoreFreqs), c.coreLevels)
		}
		if len(c.dev.MemFreqs) != c.memLevels {
			t.Errorf("%s: mem levels = %d, want %d", c.dev.Name, len(c.dev.MemFreqs), c.memLevels)
		}
		if c.dev.DefaultCore != c.defCore || c.dev.DefaultMem != c.defMem {
			t.Errorf("%s: defaults (%g,%g), want (%g,%g)", c.dev.Name,
				c.dev.DefaultCore, c.dev.DefaultMem, c.defCore, c.defMem)
		}
		if c.dev.UnitsPerSM[SP] != c.spPerSM || c.dev.UnitsPerSM[DP] != c.dpPerSM {
			t.Errorf("%s: units per SM wrong", c.dev.Name)
		}
		if c.dev.TDP != c.tdp {
			t.Errorf("%s: TDP = %g, want %g", c.dev.Name, c.dev.TDP, c.tdp)
		}
		if c.dev.SensorRefresh != c.refresh {
			t.Errorf("%s: refresh = %v, want %v", c.dev.Name, c.dev.SensorRefresh, c.refresh)
		}
		if c.dev.WarpSize != 32 || c.dev.MemBusBytes != 48 || c.dev.SharedBanks != 32 {
			t.Errorf("%s: warp/bus/banks wrong", c.dev.Name)
		}
	}
}

func TestCoreRangesMatchTable2(t *testing.T) {
	xp := TitanXp()
	if xp.CoreFreqs[0] != 582 || xp.CoreFreqs[len(xp.CoreFreqs)-1] != 1911 {
		t.Errorf("Titan Xp core range [%g:%g], want [582:1911]", xp.CoreFreqs[0], xp.CoreFreqs[len(xp.CoreFreqs)-1])
	}
	tx := GTXTitanX()
	if tx.CoreFreqs[0] != 595 || tx.CoreFreqs[len(tx.CoreFreqs)-1] != 1164 {
		t.Errorf("Titan X core range wrong")
	}
	k := TeslaK40c()
	if k.CoreFreqs[0] != 666 || k.CoreFreqs[len(k.CoreFreqs)-1] != 875 {
		t.Errorf("K40c core range wrong")
	}
}

func TestDeviceByName(t *testing.T) {
	for _, name := range []string{"Titan Xp", "GTX Titan X", "Tesla K40c"} {
		d, err := DeviceByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.Name != name {
			t.Fatalf("got %q, want %q", d.Name, name)
		}
	}
	if _, err := DeviceByName("GTX 480"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestAllConfigs(t *testing.T) {
	d := GTXTitanX()
	cfgs := d.AllConfigs()
	if len(cfgs) != d.NumConfigs() || len(cfgs) != 16*4 {
		t.Fatalf("config count = %d, want 64", len(cfgs))
	}
	seen := map[Config]bool{}
	for _, c := range cfgs {
		if seen[c] {
			t.Fatalf("duplicate config %v", c)
		}
		seen[c] = true
		if !d.SupportsCoreFreq(c.CoreMHz) || !d.SupportsMemFreq(c.MemMHz) {
			t.Fatalf("config %v not supported", c)
		}
	}
	if !seen[d.DefaultConfig()] {
		t.Fatal("default config missing from enumeration")
	}
}

func TestPeakFormulas(t *testing.T) {
	d := GTXTitanX()
	// PeakBand = f · bytes/cycle (paper Section III-C).
	if got := d.PeakDRAMBandwidth(3505); got != 3505e6*48 {
		t.Fatalf("DRAM peak = %g", got)
	}
	if got := d.PeakSharedBandwidth(975); got != 975e6*32*4*24 {
		t.Fatalf("shared peak = %g", got)
	}
	if got := d.PeakL2Bandwidth(975); got != 975e6*d.L2BytesPerCycle {
		t.Fatalf("L2 peak = %g", got)
	}
	// Eq. 8 denominator: warps/s at peak.
	if got := d.PeakComputeWarpsPerSec(SP, 975); got != 975e6*128*24/32 {
		t.Fatalf("SP warp peak = %g", got)
	}
}

func TestValidateRejectsBrokenDevices(t *testing.T) {
	broken := func(mod func(d *Device)) *Device {
		d := GTXTitanX()
		mod(d)
		return d
	}
	cases := map[string]*Device{
		"empty name":       broken(func(d *Device) { d.Name = "" }),
		"no SMs":           broken(func(d *Device) { d.NumSMs = 0 }),
		"missing units":    broken(func(d *Device) { delete(d.UnitsPerSM, SF) }),
		"no ladders":       broken(func(d *Device) { d.CoreFreqs = nil }),
		"unsorted ladder":  broken(func(d *Device) { d.CoreFreqs[0], d.CoreFreqs[1] = d.CoreFreqs[1], d.CoreFreqs[0] }),
		"default off-grid": broken(func(d *Device) { d.DefaultCore = 1000 }),
		"zero TDP":         broken(func(d *Device) { d.TDP = 0 }),
		"zero refresh":     broken(func(d *Device) { d.SensorRefresh = 0 }),
		"zero bus":         broken(func(d *Device) { d.MemBusBytes = 0 }),
	}
	for name, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate accepted broken device", name)
		}
	}
}

func TestComponentsAndDomains(t *testing.T) {
	if len(Components) != 7 {
		t.Fatalf("component count = %d, want 7", len(Components))
	}
	for _, c := range Components {
		if !c.Valid() {
			t.Fatalf("component %v invalid", c)
		}
		if c.String() == "" {
			t.Fatalf("component %v has empty name", c)
		}
	}
	if DomainOf(DRAM) != MemoryDomain {
		t.Fatal("DRAM should be in the memory domain")
	}
	for _, c := range CoreComponents {
		if DomainOf(c) != CoreDomain {
			t.Fatalf("%s should be in the core domain", c)
		}
	}
	if CoreDomain.String() != "core" || MemoryDomain.String() != "memory" {
		t.Fatal("domain names wrong")
	}
	if Component(99).Valid() {
		t.Fatal("bogus component validated")
	}
}
