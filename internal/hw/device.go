package hw

import (
	"fmt"
	"sync"
	"time"
)

// Arch names an NVIDIA microarchitecture generation.
type Arch string

// The three microarchitectures validated in the paper.
const (
	Pascal  Arch = "Pascal"
	Maxwell Arch = "Maxwell"
	Kepler  Arch = "Kepler"
)

// Device is the static description of a GPU (paper Table II). All frequencies
// are MHz. A Device is immutable reference data; runtime state (current
// clocks, sensors) lives in the simulator.
type Device struct {
	Name              string
	Arch              Arch
	ComputeCapability string

	NumSMs   int
	WarpSize int

	// UnitsPerSM gives execution units of each type per SM. SP and INT share
	// the same physical count on the modelled devices (Table II "SP/INT").
	UnitsPerSM map[Component]int

	// MemBusBytes is the device-memory bus width in bytes transferred per
	// memory-domain cycle (Table II: 48 B for all three devices).
	MemBusBytes int

	// SharedBanks is the number of shared-memory banks per SM; each bank
	// moves 4 bytes per core cycle.
	SharedBanks int

	// L2BytesPerCycle is the aggregate L2 sector bandwidth in bytes per core
	// cycle. The paper determines this experimentally (Section III-C); the
	// value here is the device datum the microbenchmarks will rediscover.
	L2BytesPerCycle float64

	// CoreFreqs and MemFreqs are the supported application-clock ladders,
	// ascending MHz.
	CoreFreqs []float64
	MemFreqs  []float64

	DefaultCore float64
	DefaultMem  float64

	TDP float64 // thermal design power, W

	// SensorRefresh is the NVML power-reading refresh period observed in the
	// paper's Section V-A (35 ms Titan Xp, 100 ms GTX Titan X, 15 ms K40c).
	SensorRefresh time.Duration

	// ladderOnce guards the memoized V-F enumeration below. The ladders are
	// immutable once a Device is published, so the enumeration and its index
	// are computed at most once per instance and shared read-only by every
	// hot path (prediction surfaces, the serving ladder walk, the cluster
	// simulator's decision tables).
	ladderOnce sync.Once
	ladder     []Config
	ladderIdx  map[Config]int
}

// Validate checks internal consistency of the device description.
func (d *Device) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("hw: device has empty name")
	}
	if d.NumSMs <= 0 || d.WarpSize <= 0 {
		return fmt.Errorf("hw: %s: SMs=%d warp=%d must be positive", d.Name, d.NumSMs, d.WarpSize)
	}
	for _, c := range ComputeUnits {
		if d.UnitsPerSM[c] <= 0 {
			return fmt.Errorf("hw: %s: missing UnitsPerSM for %s", d.Name, c)
		}
	}
	if d.MemBusBytes <= 0 || d.SharedBanks <= 0 || d.L2BytesPerCycle <= 0 {
		return fmt.Errorf("hw: %s: memory geometry not positive", d.Name)
	}
	if len(d.CoreFreqs) == 0 || len(d.MemFreqs) == 0 {
		return fmt.Errorf("hw: %s: empty frequency ladder", d.Name)
	}
	if !ascending(d.CoreFreqs) || !ascending(d.MemFreqs) {
		return fmt.Errorf("hw: %s: frequency ladders must be strictly ascending", d.Name)
	}
	if !contains(d.CoreFreqs, d.DefaultCore) {
		return fmt.Errorf("hw: %s: default core %g MHz not in ladder", d.Name, d.DefaultCore)
	}
	if !contains(d.MemFreqs, d.DefaultMem) {
		return fmt.Errorf("hw: %s: default mem %g MHz not in ladder", d.Name, d.DefaultMem)
	}
	if d.TDP <= 0 {
		return fmt.Errorf("hw: %s: TDP must be positive", d.Name)
	}
	if d.SensorRefresh <= 0 {
		return fmt.Errorf("hw: %s: sensor refresh must be positive", d.Name)
	}
	return nil
}

func ascending(v []float64) bool {
	for i := 1; i < len(v); i++ {
		if v[i] <= v[i-1] {
			return false
		}
	}
	return true
}

func contains(v []float64, x float64) bool {
	for _, y := range v {
		if y == x { //lint:ignore floateq ladder membership: catalog frequencies are exact constants, so only bitwise equality means "same level"
			return true
		}
	}
	return false
}

// SupportsCoreFreq reports whether f is a valid core application clock.
func (d *Device) SupportsCoreFreq(f float64) bool { return contains(d.CoreFreqs, f) }

// SupportsMemFreq reports whether f is a valid memory application clock.
func (d *Device) SupportsMemFreq(f float64) bool { return contains(d.MemFreqs, f) }

// Config is one (core, memory) frequency configuration in MHz.
type Config struct {
	CoreMHz float64
	MemMHz  float64
}

func (c Config) String() string {
	return fmt.Sprintf("(fcore=%.0fMHz, fmem=%.0fMHz)", c.CoreMHz, c.MemMHz)
}

// DefaultConfig returns the device's default (reference) configuration.
func (d *Device) DefaultConfig() Config {
	return Config{CoreMHz: d.DefaultCore, MemMHz: d.DefaultMem}
}

// AllConfigs enumerates the full V-F configuration space of the device,
// memory-major then core-ascending.
func (d *Device) AllConfigs() []Config {
	out := make([]Config, 0, len(d.CoreFreqs)*len(d.MemFreqs))
	for _, fm := range d.MemFreqs {
		for _, fc := range d.CoreFreqs {
			out = append(out, Config{CoreMHz: fc, MemMHz: fm})
		}
	}
	return out
}

// NumConfigs returns the size of the configuration space.
func (d *Device) NumConfigs() int { return len(d.CoreFreqs) * len(d.MemFreqs) }

// Ladder returns the memoized V-F enumeration in AllConfigs order. Unlike
// AllConfigs it does not copy: the returned slice is shared and must be
// treated as read-only. Hot paths that walk the ladder per call (cold
// prediction surfaces, per-request serving sweeps) use it to stay
// allocation-free.
func (d *Device) Ladder() []Config {
	//gpower:allocs once-only ladder memoization behind sync.Once; the steady state is two field reads
	d.initLadder()
	return d.ladder
}

// LadderIndex returns cfg's position in Ladder(), or false when cfg is not
// a ladder configuration of the device.
func (d *Device) LadderIndex(cfg Config) (int, bool) {
	//gpower:allocs once-only ladder memoization behind sync.Once; the steady state is one map read
	d.initLadder()
	i, ok := d.ladderIdx[cfg]
	return i, ok
}

func (d *Device) initLadder() {
	d.ladderOnce.Do(func() {
		d.ladder = d.AllConfigs()
		d.ladderIdx = make(map[Config]int, len(d.ladder))
		for i, c := range d.ladder {
			d.ladderIdx[c] = i
		}
	})
}

// PeakComputeWarpsPerSec returns the peak warp-issue throughput of unit c in
// warps/second at core frequency fc (MHz): units-per-SM × SMs / warp-size
// warps per cycle. The Eq. 8 utilization denominator derives from it.
func (d *Device) PeakComputeWarpsPerSec(c Component, fcMHz float64) float64 {
	return fcMHz * 1e6 * float64(d.UnitsPerSM[c]) * float64(d.NumSMs) / float64(d.WarpSize)
}

// PeakDRAMBandwidth returns the peak DRAM bandwidth in bytes/second at memory
// frequency fm (MHz): PeakBand = f · Bytes/Cycle (paper Section III-C).
func (d *Device) PeakDRAMBandwidth(fmMHz float64) float64 {
	return fmMHz * 1e6 * float64(d.MemBusBytes)
}

// PeakSharedBandwidth returns the aggregate shared-memory bandwidth in
// bytes/second at core frequency fc (MHz): banks × 4 B per SM per cycle.
func (d *Device) PeakSharedBandwidth(fcMHz float64) float64 {
	return fcMHz * 1e6 * float64(d.SharedBanks) * 4 * float64(d.NumSMs)
}

// PeakL2Bandwidth returns the aggregate L2 bandwidth in bytes/second at core
// frequency fc (MHz), from the device's (experimentally discoverable)
// bytes-per-cycle figure.
func (d *Device) PeakL2Bandwidth(fcMHz float64) float64 {
	return fcMHz * 1e6 * d.L2BytesPerCycle
}
