// Package governor implements the paper's primary future-work direction
// (Section VII): applying the DVFS-aware power model in real time "by
// taking advantage of the iterative nature of many of the most common GPU
// applications, by measuring the performance events during the first call
// to a GPU kernel and then using the power prediction to determine the
// frequency/voltage configuration that best suits that kernel".
//
// The governor runs an iterative application on the simulated device:
// iteration 1 executes at the reference configuration while events are
// collected; the model then evaluates the whole V-F space and the governor
// applies the policy-optimal configuration for the remaining iterations.
// Per-kernel decisions are cached, so multi-kernel applications converge
// after one profiling pass per kernel.
package governor

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"gpupower/internal/backend"
	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/profiler"
)

// Policy selects what the governor optimizes.
type Policy int

const (
	// MinEnergy minimizes predicted energy (power × estimated time).
	MinEnergy Policy = iota
	// MinEDP minimizes the predicted energy-delay product.
	MinEDP
	// MaxPerfUnderCap maximizes performance subject to a power cap:
	// the fastest configuration whose predicted power stays below the cap.
	MaxPerfUnderCap
)

func (p Policy) String() string {
	switch p {
	case MinEnergy:
		return "min-energy"
	case MinEDP:
		return "min-EDP"
	case MaxPerfUnderCap:
		return "max-perf-under-cap"
	default:
		// Exhaustive default: an out-of-range value still prints something
		// diagnosable rather than an empty string.
		return fmt.Sprintf("unknown(%d)", int(p))
	}
}

// ParsePolicy maps a policy's String() form (case-insensitive) back to the
// Policy — the serving layer's wire format for /v1/govern requests.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range []Policy{MinEnergy, MinEDP, MaxPerfUnderCap} {
		if strings.EqualFold(s, p.String()) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("governor: unknown policy %q (want min-energy, min-EDP or max-perf-under-cap)", s)
}

// Score evaluates one ladder point (predicted power, relative time) under
// the policy; lower is better.
func (p Policy) Score(power, relTime float64) (float64, error) {
	switch p {
	case MinEnergy:
		return power * relTime, nil
	case MinEDP:
		return power * relTime * relTime, nil
	case MaxPerfUnderCap:
		return relTime, nil
	default:
		//gpower:allocs cold error path: only an out-of-range policy value lands here
		return 0, fmt.Errorf("governor: unknown policy %v", p)
	}
}

// Governor drives per-kernel DVFS decisions on one device.
type Governor struct {
	prof   *profiler.Profiler
	model  *core.Model
	policy Policy

	// PowerCap is the cap for MaxPerfUnderCap, W. Zero means the device TDP.
	PowerCap float64

	// decisions caches the chosen configuration per kernel name.
	decisions map[string]hw.Config
	// utils caches the first-iteration utilization per kernel name.
	utils map[string]core.Utilization
}

// New creates a governor for a fitted model on the profiler's device.
func New(p *profiler.Profiler, m *core.Model, policy Policy) (*Governor, error) {
	if p == nil || m == nil {
		return nil, fmt.Errorf("governor: nil profiler or model")
	}
	if m.DeviceName != p.HW().Name {
		return nil, fmt.Errorf("governor: model fitted on %q, device is %q",
			m.DeviceName, p.HW().Name)
	}
	return &Governor{
		prof:      p,
		model:     m,
		policy:    policy,
		decisions: map[string]hw.Config{},
		utils:     map[string]core.Utilization{},
	}, nil
}

// Decide returns the governor's configuration for a kernel with known
// utilization, per the active policy.
func (g *Governor) Decide(u core.Utilization) (hw.Config, error) {
	return g.DecideContext(context.Background(), u) //lint:ignore ctxflow non-cancellable convenience wrapper; the *Context sibling is the cancellable API
}

// DecideContext is Decide under a context. It delegates to the free Decide
// function — the shared decision engine behind both the in-process governor
// and gpowerd's /v1/govern endpoint.
func (g *Governor) DecideContext(ctx context.Context, u core.Utilization) (hw.Config, error) {
	return Decide(ctx, g.model, g.prof.HW(), g.policy, g.PowerCap, u)
}

// Decide returns the policy-optimal configuration for a kernel with known
// utilization on dev under a fitted model — the standalone decision engine
// the serving layer calls without holding a profiler. A powerCap ≤ 0 means
// the device TDP.
//
// The per-configuration power and relative-time columns come from the
// process-wide prediction-surface cache: the first decision for a
// utilization vector computes the ladder once, and every subsequent
// decision — repeated Step calls, policy re-evaluation, govern requests —
// reduces to one cache lookup plus a linear scan. The scan order and the
// strict `score < best` comparison are those of the historical per-point
// loop, so the chosen configuration is byte-identical.
func Decide(ctx context.Context, m *core.Model, dev *hw.Device, policy Policy, powerCap float64, u core.Utilization) (hw.Config, error) {
	ref := m.Ref
	cap := powerCap
	if cap <= 0 {
		cap = dev.TDP
	}
	s, err := core.Surfaces.Get(ctx, m, dev, ref, u)
	if err != nil {
		var npe *core.NonPositiveRefPowerError
		if errors.As(err, &npe) {
			// The cap filter below decides feasibility; a non-positive
			// reference power only invalidates the energy normalization,
			// which the governor's scores never use. Recompute without it.
			return decideUncached(m, dev, policy, cap, u)
		}
		return hw.Config{}, err
	}
	i, err := DecideOnSurface(s, policy, cap)
	if err != nil {
		return hw.Config{}, err
	}
	return s.Configs[i], nil
}

// DecideOnSurface returns the ladder index of the policy-optimal point on a
// memoized prediction surface: the lowest-score point whose predicted power
// stays at or below powerCap (which must already be resolved; callers pass
// the device TDP for "no cap"). It is the scan both Decide and the cluster
// simulator's decision cache share — the strict `score < best` comparison
// and the ladder order are the historical per-point loop's, so the chosen
// configuration is byte-identical to the pre-surface governor.
//
//gpower:noalloc the per-decision scan over a memoized surface is pure arithmetic
func DecideOnSurface(s *core.Surface, policy Policy, powerCap float64) (int, error) {
	return DecideOnSurfaceBounded(s, policy, powerCap, 0)
}

// DecideOnSurfaceBounded is DecideOnSurface with an optional execution-time
// bound: when maxRelTime > 0, ladder points whose predicted relative time
// exceeds it are rejected before scoring. This is the deadline-aware
// variant the cluster simulator decides with — "the cheapest configuration
// that cannot stretch a job past its slack" — and it degrades to the plain
// scan when the bound is zero.
//
//gpower:noalloc the deadline-aware scan allocates only when no ladder point is feasible
func DecideOnSurfaceBounded(s *core.Surface, policy Policy, powerCap, maxRelTime float64) (int, error) {
	best := -1
	bestScore := 0.0
	for i := 0; i < s.Len(); i++ {
		p := s.PowerW[i]
		if p > powerCap {
			continue
		}
		rt := s.RelTime[i]
		if maxRelTime > 0 && rt > maxRelTime {
			continue
		}
		score, err := policy.Score(p, rt)
		if err != nil {
			return -1, err
		}
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		if maxRelTime > 0 {
			//gpower:allocs infeasible-cap error path: no ladder point survives the cap and deadline filters
			return -1, fmt.Errorf("governor: no configuration satisfies the %g W cap within %gx relative time", powerCap, maxRelTime)
		}
		//gpower:allocs infeasible-cap error path: no ladder point survives the cap filter
		return -1, fmt.Errorf("governor: no configuration satisfies the %g W cap", powerCap)
	}
	return best, nil
}

// decideUncached is the historical per-point loop, retained for profiles
// whose reference power prediction is non-positive (the surface layer
// refuses to build relative-energy columns for those, but the governor's
// scores are cap-filtered absolutes and remain well-defined).
func decideUncached(m *core.Model, dev *hw.Device, policy Policy, cap float64, u core.Utilization) (hw.Config, error) {
	ref := m.Ref
	best := ref
	bestScore, haveBest := 0.0, false
	for _, cfg := range dev.AllConfigs() {
		p, err := m.Predict(u, cfg)
		if err != nil {
			return hw.Config{}, err
		}
		if p > cap {
			continue
		}
		rt := core.EstimateRelativeTime(u, ref, cfg)
		score, err := policy.Score(p, rt)
		if err != nil {
			return hw.Config{}, err
		}
		if !haveBest || score < bestScore {
			best, bestScore, haveBest = cfg, score, true
		}
	}
	if !haveBest {
		return hw.Config{}, fmt.Errorf("governor: no configuration satisfies the %g W cap", cap)
	}
	return best, nil
}

// IterationRecord is one application iteration as executed by the governor.
type IterationRecord struct {
	Iteration int
	Config    hw.Config // requested configuration
	EnergyJ   float64
	Seconds   float64
	Profiling bool // true when this iteration collected events at the reference
}

// Report summarizes a governed run against the always-default baseline.
type Report struct {
	App        string
	Policy     Policy
	Iterations int

	Records []IterationRecord

	// Governed totals.
	EnergyJ float64
	Seconds float64
	// Baseline totals (every iteration at the reference configuration).
	BaselineEnergyJ float64
	BaselineSeconds float64
}

// EnergySavingsPercent is the governed run's energy saving vs the baseline.
func (r *Report) EnergySavingsPercent() float64 {
	if r.BaselineEnergyJ == 0 { //lint:ignore floateq guard: a zero baseline means "no baseline run", and the saving is undefined rather than divided
		return 0
	}
	return 100 * (r.BaselineEnergyJ - r.EnergyJ) / r.BaselineEnergyJ
}

// SlowdownPercent is the governed run's time increase vs the baseline
// (negative values mean the governed run was faster).
func (r *Report) SlowdownPercent() float64 {
	if r.BaselineSeconds == 0 { //lint:ignore floateq guard: a zero baseline means "no baseline run", and the slowdown is undefined rather than divided
		return 0
	}
	return 100 * (r.Seconds - r.BaselineSeconds) / r.BaselineSeconds
}

// runKernelAt executes one kernel launch at cfg through the measurement
// backend and returns its measured energy and duration (what a wattmeter
// integrates).
func (g *Governor) runKernelAt(k *kernels.KernelSpec, cfg hw.Config) (energyJ, seconds float64, err error) {
	return g.prof.RunKernelAt(k, cfg)
}

// RunApp executes an iterative application for the given iteration count
// under governor control, and the same workload at the reference
// configuration as the baseline. Cancellation is checked at iteration
// granularity.
func (g *Governor) RunApp(ctx context.Context, app *kernels.App, iterations int) (*Report, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if iterations < 1 {
		return nil, fmt.Errorf("governor: iterations must be >= 1, got %d", iterations)
	}
	rep := &Report{App: app.Name, Policy: g.policy, Iterations: iterations}

	for iter := 1; iter <= iterations; iter++ {
		if err := backend.CheckContext(ctx, fmt.Sprintf("governor: iteration %d of %s", iter, app.Name)); err != nil {
			return nil, err
		}
		for _, k := range app.Kernels {
			cfg, profiling, err := g.configFor(ctx, k)
			if err != nil {
				return nil, err
			}
			e, s, err := g.runKernelAt(k, cfg)
			if err != nil {
				return nil, err
			}
			rep.Records = append(rep.Records, IterationRecord{
				Iteration: iter, Config: cfg, EnergyJ: e, Seconds: s, Profiling: profiling,
			})
			rep.EnergyJ += e
			rep.Seconds += s

			be, bs, err := g.runKernelAt(k, g.model.Ref)
			if err != nil {
				return nil, err
			}
			rep.BaselineEnergyJ += be
			rep.BaselineSeconds += bs
		}
	}
	return rep, nil
}

// configFor returns the configuration for one kernel launch, profiling it
// at the reference configuration on first sight.
func (g *Governor) configFor(ctx context.Context, k *kernels.KernelSpec) (hw.Config, bool, error) {
	if cfg, ok := g.decisions[k.Name]; ok {
		return cfg, false, nil
	}
	// First call: run at the reference configuration and collect events.
	prof, err := g.prof.ProfileApp(ctx, kernels.SingleKernelApp(k), g.model.Ref)
	if err != nil {
		return hw.Config{}, false, err
	}
	u, err := core.AppUtilization(g.prof.HW(), prof, g.model.L2BytesPerCycle)
	if err != nil {
		return hw.Config{}, false, err
	}
	g.utils[k.Name] = u
	cfg, err := g.DecideContext(ctx, u)
	if err != nil {
		return hw.Config{}, false, err
	}
	g.decisions[k.Name] = cfg
	// The profiling launch itself happens at the reference configuration.
	return g.model.Ref, true, nil
}

// Decision returns the cached configuration for a kernel, if decided.
func (g *Governor) Decision(kernelName string) (hw.Config, bool) {
	cfg, ok := g.decisions[kernelName]
	return cfg, ok
}

// Utilization returns the cached first-iteration utilization for a kernel.
func (g *Governor) Utilization(kernelName string) (core.Utilization, bool) {
	u, ok := g.utils[kernelName]
	return u, ok
}
