package governor

import (
	"context"
	"sync"
	"testing"

	"gpupower/internal/backend/simbk"
	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/microbench"
	"gpupower/internal/profiler"
	"gpupower/internal/suites"
)

var (
	rigOnce sync.Once
	rigProf *profiler.Profiler
	rigMod  *core.Model
	rigErr  error
)

// rig fits one shared GTX Titan X model for all governor tests.
func rig(t *testing.T) (*profiler.Profiler, *core.Model) {
	t.Helper()
	rigOnce.Do(func() {
		ctx := context.Background()
		b, err := simbk.Open("GTX Titan X", 42)
		if err != nil {
			rigErr = err
			return
		}
		dev := b.Device()
		rigProf, rigErr = profiler.New(b)
		if rigErr != nil {
			return
		}
		var d *core.Dataset
		d, rigErr = core.BuildDataset(ctx, rigProf, microbench.Suite(), dev.DefaultConfig(), dev.AllConfigs())
		if rigErr != nil {
			return
		}
		rigMod, rigErr = core.Estimate(ctx, d, nil)
	})
	if rigErr != nil {
		t.Fatal(rigErr)
	}
	return rigProf, rigMod
}

func app(t *testing.T, short string) *kernels.App {
	t.Helper()
	a, err := suites.ByShort(short)
	if err != nil {
		t.Fatal(err)
	}
	return a.App
}

func TestNewValidation(t *testing.T) {
	p, m := rig(t)
	if _, err := New(nil, m, MinEnergy); err == nil {
		t.Fatal("nil profiler accepted")
	}
	if _, err := New(p, nil, MinEnergy); err == nil {
		t.Fatal("nil model accepted")
	}
	other := *m
	other.DeviceName = "Tesla K40c"
	if _, err := New(p, &other, MinEnergy); err == nil {
		t.Fatal("device mismatch accepted")
	}
}

func TestGovernorSavesEnergyOnMemoryBoundApp(t *testing.T) {
	p, m := rig(t)
	g, err := New(p, m, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.RunApp(context.Background(), app(t, "LBM"), 20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EnergySavingsPercent() <= 2 {
		t.Fatalf("min-energy governor saved only %.1f%% on a memory-bound app",
			rep.EnergySavingsPercent())
	}
	// The decision for a DRAM-bound kernel must lower the core clock.
	cfg, ok := g.Decision(app(t, "LBM").Kernels[0].Name)
	if !ok {
		t.Fatal("no cached decision")
	}
	if cfg.CoreMHz >= m.Ref.CoreMHz {
		t.Fatalf("memory-bound kernel got core clock %g >= reference", cfg.CoreMHz)
	}
}

func TestGovernorProfilesOnlyFirstIteration(t *testing.T) {
	p, m := rig(t)
	g, err := New(p, m, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.RunApp(context.Background(), app(t, "CUTCP"), 5)
	if err != nil {
		t.Fatal(err)
	}
	profiling := 0
	for _, rec := range rep.Records {
		if rec.Profiling {
			profiling++
			if rec.Iteration != 1 {
				t.Fatalf("profiling happened at iteration %d", rec.Iteration)
			}
			if rec.Config != m.Ref {
				t.Fatal("profiling iteration not at the reference configuration")
			}
		}
	}
	if profiling != 1 {
		t.Fatalf("%d profiling launches for a single-kernel app, want 1", profiling)
	}
	// All subsequent iterations use one cached decision.
	var chosen hw.Config
	for _, rec := range rep.Records[1:] {
		if chosen == (hw.Config{}) {
			chosen = rec.Config
		}
		if rec.Config != chosen {
			t.Fatal("decision not stable across iterations")
		}
	}
}

func TestGovernorMultiKernelApp(t *testing.T) {
	p, m := rig(t)
	g, err := New(p, m, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	km := app(t, "K-M") // two kernels
	rep, err := g.RunApp(context.Background(), km, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 2*4 {
		t.Fatalf("record count = %d, want 8", len(rep.Records))
	}
	for _, k := range km.Kernels {
		if _, ok := g.Decision(k.Name); !ok {
			t.Fatalf("kernel %s has no decision", k.Name)
		}
		if _, ok := g.Utilization(k.Name); !ok {
			t.Fatalf("kernel %s has no cached utilization", k.Name)
		}
	}
}

func TestMaxPerfUnderCap(t *testing.T) {
	p, m := rig(t)
	g, err := New(p, m, MaxPerfUnderCap)
	if err != nil {
		t.Fatal(err)
	}
	g.PowerCap = 120 // well below BlackScholes' ~189 W at the reference

	wl := app(t, "BLCKSC")
	rep, err := g.RunApp(context.Background(), wl, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := g.Decision(wl.Kernels[0].Name)
	u, _ := g.Utilization(wl.Kernels[0].Name)
	pred, err := m.Predict(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pred > 120 {
		t.Fatalf("capped decision predicts %.1f W > 120 W cap", pred)
	}
	// Under a cap the governed run must consume less energy per unit time —
	// and, being capped, it is slower than the unconstrained baseline.
	if rep.SlowdownPercent() < 0 {
		t.Fatalf("capped run faster than baseline (%.1f%%)", rep.SlowdownPercent())
	}
	// The chosen point should be the *fastest* admissible one: every faster
	// configuration must violate the cap.
	for _, cand := range p.HW().AllConfigs() {
		rt := core.EstimateRelativeTime(u, m.Ref, cand)
		chosenRT := core.EstimateRelativeTime(u, m.Ref, cfg)
		if rt < chosenRT-1e-9 {
			pw, err := m.Predict(u, cand)
			if err != nil {
				t.Fatal(err)
			}
			if pw <= 120 {
				t.Fatalf("faster admissible config %v (%.1f W) exists", cand, pw)
			}
		}
	}
}

func TestImpossibleCap(t *testing.T) {
	p, m := rig(t)
	g, err := New(p, m, MaxPerfUnderCap)
	if err != nil {
		t.Fatal(err)
	}
	g.PowerCap = 10 // below idle power: nothing is admissible
	if _, err := g.RunApp(context.Background(), app(t, "BLCKSC"), 2); err == nil {
		t.Fatal("impossible cap accepted")
	}
}

func TestRunAppValidation(t *testing.T) {
	p, m := rig(t)
	g, err := New(p, m, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.RunApp(context.Background(), app(t, "LBM"), 0); err == nil {
		t.Fatal("zero iterations accepted")
	}
	if _, err := g.RunApp(context.Background(), &kernels.App{Name: "empty"}, 1); err == nil {
		t.Fatal("invalid app accepted")
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []Policy{MinEnergy, MinEDP, MaxPerfUnderCap, Policy(9)} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
}

func TestMinEDPRespectsPerformanceMore(t *testing.T) {
	p, m := rig(t)
	gE, err := New(p, m, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	gD, err := New(p, m, MinEDP)
	if err != nil {
		t.Fatal(err)
	}
	wl := app(t, "CUTCP")
	if _, err := gE.RunApp(context.Background(), wl, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := gD.RunApp(context.Background(), wl, 2); err != nil {
		t.Fatal(err)
	}
	u, _ := gE.Utilization(wl.Kernels[0].Name)
	cfgE, _ := gE.Decision(wl.Kernels[0].Name)
	cfgD, _ := gD.Decision(wl.Kernels[0].Name)
	rtE := core.EstimateRelativeTime(u, m.Ref, cfgE)
	rtD := core.EstimateRelativeTime(u, m.Ref, cfgD)
	if rtD > rtE+1e-9 {
		t.Fatalf("min-EDP decision slower (%.2fx) than min-energy (%.2fx)", rtD, rtE)
	}
}
