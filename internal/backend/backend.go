// Package backend defines the measurement seam of the modelling pipeline:
// the narrow surface through which every higher layer (profiler, dataset
// builder, estimator, governor, auto-tuner, experiment rigs) observes a GPU.
//
// The paper's methodology needs exactly three capabilities from a device —
// application-clock control (NVML), a power sensor (NVML), and performance
// event collection (CUPTI) — plus, for the governor/validation paths, the
// ability to execute a kernel and read back its measured energy. Anything
// that provides those four capabilities can drive the model: the in-process
// simulator (internal/backend/simbk), a recorded measurement trace
// (internal/backend/trace), or — on real hardware — an NVML/CUPTI exporter.
// The fitting pipeline is agnostic to which one is behind the interface;
// that substitution argument is what makes the model "fitted from
// measurements only".
//
// This package intentionally has no dependency on the simulator (or any
// concrete backend): it sits below all of them, so concrete backends and
// even the simulator itself may import it for the shared error taxonomy.
package backend

import (
	"context"
	"fmt"
	"time"

	"gpupower/internal/hw"
	"gpupower/internal/kernels"
)

// RunInfo summarizes one measured kernel run as any backend can report it:
// what was requested, what the hardware actually ran at (TDP capping), and
// how long a single launch took. It deliberately carries no ground truth —
// it is the portable, serializable subset of the simulator's RunResult.
type RunInfo struct {
	// Requested is the application-clock configuration in force at launch.
	Requested hw.Config
	// Effective is the configuration the hardware actually ran at; it
	// differs from Requested when the TDP governor stepped the core clock
	// down.
	Effective hw.Config
	// Seconds is the single-launch execution time at Effective.
	Seconds float64
}

// Metrics holds aggregated performance-event metrics keyed by metric name
// (the left column of the paper's Table I, e.g. "ACycles", "ABandL2.read").
// String keys keep this package free of the CUPTI façade and make the type
// directly serializable into traces.
type Metrics map[string]float64

// ClockController is the NVML-like clock-control surface.
type ClockController interface {
	// SetClocks requests application clocks. Both frequencies must be
	// supported ladder levels; violations are reported with an error
	// wrapping ErrUnsupportedClock.
	SetClocks(cfg hw.Config) error
	// Clocks returns the currently requested application clocks.
	Clocks() hw.Config
}

// PowerSensor is the NVML-like power-measurement surface. Readings follow
// the paper's sampling semantics: the sensor refreshes periodically, so a
// measurement spans at least minWall of wall time and averages the readings.
type PowerSensor interface {
	// SampledKernelPower launches the kernel repeatedly for at least
	// minWall at the current clocks and returns the sensor-averaged power
	// in watts, together with the run summary.
	SampledKernelPower(k *kernels.KernelSpec, minWall time.Duration) (float64, RunInfo, error)
	// SampledIdlePower measures the awake-but-idle device at the current
	// clocks for at least minWall.
	SampledIdlePower(minWall time.Duration) (float64, error)
}

// EventCollector is the CUPTI-like event-collection surface.
type EventCollector interface {
	// CollectMetrics replays the kernel as many times as the counter
	// budget requires at the current clocks and returns the Table I
	// metrics, together with the last replay's run summary.
	CollectMetrics(k *kernels.KernelSpec) (Metrics, RunInfo, error)
}

// KernelRunner executes kernels for their side effects: the governed-run and
// time-scaling paths need true execution time and measured energy (what a
// wattmeter integrates), not the model's prediction.
type KernelRunner interface {
	// RunKernel executes one launch at the current clocks and returns its
	// measured energy in joules and the run summary.
	RunKernel(k *kernels.KernelSpec) (float64, RunInfo, error)
}

// Backend composes the full measurement surface of one GPU.
type Backend interface {
	// Device returns the static hardware description of the GPU behind
	// this backend.
	Device() *hw.Device
	ClockController
	PowerSensor
	EventCollector
	KernelRunner
}

// CheckContext returns nil while ctx is live, and otherwise a labeled error
// wrapping ctx.Err() — so errors.Is(err, context.Canceled) (or
// context.DeadlineExceeded) holds for every cancellation surfaced through
// the pipeline. Long-running operations call it at iteration/configuration
// granularity.
func CheckContext(ctx context.Context, op string) error {
	if err := ctx.Err(); err != nil { //gpower:allocs cancellation path: ctx.Err is an interface call and the wrap allocates only after the context is already dead
		return fmt.Errorf("%s: %w", op, err)
	}
	return nil
}
