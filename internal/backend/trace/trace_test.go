package trace

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gpupower/internal/backend"
	"gpupower/internal/backend/simbk"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
)

func testKernel(name string) *kernels.KernelSpec {
	return &kernels.KernelSpec{
		Name:            name,
		WarpInstrs:      map[hw.Component]float64{hw.SP: 2e9, hw.Int: 5e8},
		L2ReadBytes:     5e7,
		DRAMReadBytes:   5e7,
		FixedCycles:     1e5,
		IssueEfficiency: 0.9,
	}
}

func openRecorder(t *testing.T) (*Recorder, *simbk.Backend) {
	t.Helper()
	b, err := simbk.Open("Tesla K40c", 7)
	if err != nil {
		t.Fatal(err)
	}
	return NewRecorder(b), b
}

// record performs a small measurement session through the recorder and
// returns the live answers for comparison.
func record(t *testing.T, rec *Recorder) (watts, idle, energy float64, metrics backend.Metrics) {
	t.Helper()
	k := testKernel("k")
	if err := rec.SetClocks(hw.Config{CoreMHz: 745, MemMHz: 3004}); err != nil {
		t.Fatal(err)
	}
	var err error
	watts, _, err = rec.SampledKernelPower(k, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	idle, err = rec.SampledIdlePower(50 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	metrics, _, err = rec.CollectMetrics(k)
	if err != nil {
		t.Fatal(err)
	}
	energy, _, err = rec.RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	return watts, idle, energy, metrics
}

func TestRecorderCapturesSession(t *testing.T) {
	rec, _ := openRecorder(t)
	record(t, rec)
	// set_clocks + kernel_power + idle_power + collect + run_kernel.
	if rec.Len() != 5 {
		t.Fatalf("recorded %d events, want 5", rec.Len())
	}
	tr := rec.Snapshot()
	if tr.Version != Version || tr.Device != "Tesla K40c" {
		t.Fatalf("snapshot header: version %d, device %q", tr.Version, tr.Device)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayServesRecordedAnswers(t *testing.T) {
	rec, _ := openRecorder(t)
	watts, idle, energy, metrics := record(t, rec)

	rep, err := NewReplayer(rec.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.SetClocks(hw.Config{CoreMHz: 745, MemMHz: 3004}); err != nil {
		t.Fatal(err)
	}
	k := testKernel("k")
	w, info, err := rep.SampledKernelPower(k, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if w != watts {
		t.Fatalf("replayed power %g, recorded %g", w, watts)
	}
	if info.Seconds <= 0 {
		t.Fatal("run summary lost in replay")
	}
	i, err := rep.SampledIdlePower(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if i != idle {
		t.Fatalf("replayed idle %g, recorded %g", i, idle)
	}
	m, _, err := rep.CollectMetrics(k)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range metrics {
		if got := m[name]; got != v {
			t.Fatalf("metric %s: replayed %g, recorded %g", name, got, v)
		}
	}
	e, _, err := rep.RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	if e != energy {
		t.Fatalf("replayed energy %g, recorded %g", e, energy)
	}
	if rep.Remaining() != 0 {
		t.Fatalf("%d measurements unserved", rep.Remaining())
	}
}

func TestReplayMismatchAndExhaustion(t *testing.T) {
	rec, _ := openRecorder(t)
	record(t, rec)
	rep, err := NewReplayer(rec.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	k := testKernel("k")

	// Same kernel at clocks the recording never measured at: mismatch.
	// (The replayer starts at the default configuration; the recording
	// measured at 745/3004 only.)
	if _, _, err := rep.SampledKernelPower(k, time.Second); !errors.Is(err, backend.ErrTraceMismatch) {
		t.Fatalf("unrecorded clocks: err = %v, want ErrTraceMismatch", err)
	}
	// Never-recorded kernel: mismatch.
	if err := rep.SetClocks(hw.Config{CoreMHz: 745, MemMHz: 3004}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rep.SampledKernelPower(testKernel("other"), time.Second); !errors.Is(err, backend.ErrTraceMismatch) {
		t.Fatalf("unrecorded kernel: err = %v, want ErrTraceMismatch", err)
	}
	// Recorded once, asked twice: second ask is exhaustion, not mismatch.
	if _, _, err := rep.SampledKernelPower(k, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rep.SampledKernelPower(k, time.Second); !errors.Is(err, backend.ErrTraceExhausted) {
		t.Fatalf("repeat ask: err = %v, want ErrTraceExhausted", err)
	}
	// Off-ladder clocks fail with the clock error, not a trace error.
	if err := rep.SetClocks(hw.Config{CoreMHz: 111, MemMHz: 3004}); !errors.Is(err, backend.ErrUnsupportedClock) {
		t.Fatalf("off-ladder: err = %v, want ErrUnsupportedClock", err)
	}
}

func TestReplayToleratesReordering(t *testing.T) {
	// Keyed matching: two kernels recorded in one order replay correctly in
	// the other order (harmless reordering between benchmark iterations).
	rec, _ := openRecorder(t)
	if err := rec.SetClocks(hw.Config{CoreMHz: 745, MemMHz: 3004}); err != nil {
		t.Fatal(err)
	}
	wa, _, err := rec.SampledKernelPower(testKernel("a"), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	wb, _, err := rec.SampledKernelPower(testKernel("b"), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplayer(rec.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.SetClocks(hw.Config{CoreMHz: 745, MemMHz: 3004}); err != nil {
		t.Fatal(err)
	}
	gb, _, err := rep.SampledKernelPower(testKernel("b"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ga, _, err := rep.SampledKernelPower(testKernel("a"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ga != wa || gb != wb {
		t.Fatalf("reordered replay: got (%g, %g), recorded (%g, %g)", ga, gb, wa, wb)
	}
}

// TestReplayMatchAllocFree is the allocation regression test for the
// indexed request matcher: serving a recorded measurement is one struct-key
// map lookup plus a head advance, and must not allocate (the historical
// matcher built a formatted string key and re-sliced the queue per call).
func TestReplayMatchAllocFree(t *testing.T) {
	tr := &Trace{Version: Version, Device: "Tesla K40c"}
	const reps = 400
	for i := 0; i < reps; i++ {
		tr.Events = append(tr.Events, Event{
			Op: OpIdlePower, CoreMHz: 745, MemMHz: 3004, Watts: 20 + float64(i),
		})
	}
	rep, err := NewReplayer(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.SetClocks(hw.Config{CoreMHz: 745, MemMHz: 3004}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(reps/2, func() {
		if _, err := rep.SampledIdlePower(time.Second); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("indexed trace match allocates %.1f/op, want 0", allocs)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rec, _ := openRecorder(t)
	rec.SetNote("unit-test session")
	watts, _, _, _ := record(t, rec)
	for _, name := range []string{"session.json", "session.json.gz"} {
		path := filepath.Join(t.TempDir(), name)
		if err := rec.Save(path); err != nil {
			t.Fatal(err)
		}
		tr, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Note != "unit-test session" || len(tr.Events) != rec.Len() {
			t.Fatalf("%s: round trip lost events or note", name)
		}
		rep, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.SetClocks(hw.Config{CoreMHz: 745, MemMHz: 3004}); err != nil {
			t.Fatal(err)
		}
		w, _, err := rep.SampledKernelPower(testKernel("k"), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		// JSON round-trips floats exactly (encoding/json emits the shortest
		// representation that re-parses to the same float64).
		if w != watts || math.IsNaN(w) {
			t.Fatalf("%s: replayed %g, recorded %g", name, w, watts)
		}
	}
}

func TestLoadRejectsBadTraces(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"garbage.json": "not json",
		"version.json": `{"version": 99, "device": "Tesla K40c", "events": []}`,
		"device.json":  `{"version": 1, "device": "GTX 480", "events": []}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The version failure specifically carries the typed sentinel.
	_, err := Load(filepath.Join(dir, "version.json"))
	if !errors.Is(err, backend.ErrTraceVersion) {
		t.Fatalf("version error = %v, want wrapped ErrTraceVersion", err)
	}
	// Truncated gzip data must fail cleanly.
	bad := filepath.Join(dir, "trunc.json.gz")
	if err := os.WriteFile(bad, []byte{0x1f, 0x8b, 0x00}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("truncated gzip accepted")
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := Open(filepath.Join(dir, "version.json")); err == nil {
		t.Error("Open accepted a bad trace")
	}
}

func TestRecorderString(t *testing.T) {
	rec, _ := openRecorder(t)
	s := rec.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
