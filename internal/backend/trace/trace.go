// Package trace implements the record/replay measurement backend: a
// Recorder wraps any backend.Backend and captures every measurement
// interaction (clock sets, power reads, event passes, kernel runs) into a
// versioned JSON trace; a Replayer later serves the same interactions back
// with no device — simulated or real — in the process.
//
// This is the artifact-portability workflow of the paper's virtual-sensor
// use case: one machine with the GPU (or the simulator) records a
// measurement session; any other machine refits the model or re-evaluates a
// profile from the recorded trace alone. Because the profiler and estimator
// are deterministic given the measurements, a fit replayed from a trace is
// bitwise-identical to the fit that produced it.
//
// # Format
//
// A trace is a JSON object {version, device, events[]} (gzip-compressed
// when the path ends in ".gz"). Version compatibility rule: a reader
// accepts exactly the versions it knows (currently only Version 1); any
// other version fails with backend.ErrTraceVersion rather than guessing.
// Additive changes (new optional fields) do not bump the version; any
// change that alters the meaning or matching of recorded events does.
package trace

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"gpupower/internal/backend"
	"gpupower/internal/hw"
)

// Version is the trace format version this build reads and writes.
const Version = 1

// Op identifies one kind of recorded measurement interaction.
type Op string

// The recorded operations.
const (
	OpSetClocks   Op = "set_clocks"
	OpKernelPower Op = "kernel_power"
	OpIdlePower   Op = "idle_power"
	OpCollect     Op = "collect"
	OpRunKernel   Op = "run_kernel"
)

// Run is the serialized form of backend.RunInfo.
type Run struct {
	ReqCoreMHz float64 `json:"req_fcore"`
	ReqMemMHz  float64 `json:"req_fmem"`
	EffCoreMHz float64 `json:"eff_fcore"`
	EffMemMHz  float64 `json:"eff_fmem"`
	Seconds    float64 `json:"seconds"`
}

// Event is one recorded measurement interaction. CoreMHz/MemMHz are the
// application clocks in force when the interaction happened — together with
// Op and Kernel they form the replay-matching key.
type Event struct {
	Op      Op      `json:"op"`
	Kernel  string  `json:"kernel,omitempty"`
	CoreMHz float64 `json:"fcore"`
	MemMHz  float64 `json:"fmem"`

	// Watts carries the measured power for kernel_power and idle_power.
	Watts float64 `json:"w,omitempty"`
	// EnergyJ carries the measured energy for run_kernel.
	EnergyJ float64 `json:"j,omitempty"`
	// Metrics carries the Table I metrics for collect.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Run summarizes the kernel execution behind the measurement.
	Run *Run `json:"run,omitempty"`
}

// Trace is a complete recorded measurement session on one device.
type Trace struct {
	Version int    `json:"version"`
	Device  string `json:"device"`
	// Note is free-form provenance (recording tool, seed, date).
	Note   string  `json:"note,omitempty"`
	Events []Event `json:"events"`
}

// Validate checks structural invariants: a known version and a resolvable
// catalog device.
func (t *Trace) Validate() error {
	if t.Version != Version {
		return fmt.Errorf("trace: version %d (want %d): %w", t.Version, Version, backend.ErrTraceVersion)
	}
	if _, err := hw.DeviceByName(t.Device); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// Save writes the trace as JSON to path, gzip-compressed when the path ends
// in ".gz".
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(t); err != nil {
		f.Close()
		return fmt.Errorf("trace: encoding %s: %w", path, err)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			f.Close()
			return fmt.Errorf("trace: compressing %s: %w", path, err)
		}
	}
	return f.Close()
}

// Load reads a trace from path (transparently gunzipping ".gz" files) and
// validates it.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("trace: opening %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decoding %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return &t, nil
}
