package trace

import (
	"fmt"
	"sync"
	"time"

	"gpupower/internal/backend"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
)

// Recorder wraps an inner backend and captures every measurement
// interaction into a Trace. It is safe for concurrent use, but note that
// meaningful recordings are serial anyway: measurements mutate the device's
// clock state, so the profiler never issues them concurrently on one
// backend.
type Recorder struct {
	inner backend.Backend

	mu     sync.Mutex
	events []Event
	note   string
}

var _ backend.Backend = (*Recorder)(nil)

// NewRecorder wraps inner so every interaction is recorded.
func NewRecorder(inner backend.Backend) *Recorder {
	return &Recorder{inner: inner}
}

// SetNote attaches free-form provenance to the recorded trace.
func (r *Recorder) SetNote(note string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.note = note
}

// Snapshot returns a copy of everything recorded so far as a Trace.
func (r *Recorder) Snapshot() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Trace{
		Version: Version,
		Device:  r.inner.Device().Name,
		Note:    r.note,
		Events:  append([]Event(nil), r.events...),
	}
}

// Save writes the recorded trace to path (".gz" for gzip).
func (r *Recorder) Save(path string) error {
	return r.Snapshot().Save(path)
}

// Len reports how many interactions have been recorded.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

func (r *Recorder) append(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func runJSON(info backend.RunInfo) *Run {
	return &Run{
		ReqCoreMHz: info.Requested.CoreMHz,
		ReqMemMHz:  info.Requested.MemMHz,
		EffCoreMHz: info.Effective.CoreMHz,
		EffMemMHz:  info.Effective.MemMHz,
		Seconds:    info.Seconds,
	}
}

// Device returns the inner backend's hardware description.
func (r *Recorder) Device() *hw.Device { return r.inner.Device() }

// SetClocks forwards to the inner backend and records successful changes.
func (r *Recorder) SetClocks(cfg hw.Config) error {
	if err := r.inner.SetClocks(cfg); err != nil {
		return err
	}
	r.append(Event{Op: OpSetClocks, CoreMHz: cfg.CoreMHz, MemMHz: cfg.MemMHz})
	return nil
}

// Clocks returns the inner backend's current clocks.
func (r *Recorder) Clocks() hw.Config { return r.inner.Clocks() }

// SampledKernelPower measures through the inner backend and records the
// result under the clocks in force at the call.
func (r *Recorder) SampledKernelPower(k *kernels.KernelSpec, minWall time.Duration) (float64, backend.RunInfo, error) {
	cfg := r.inner.Clocks()
	w, info, err := r.inner.SampledKernelPower(k, minWall)
	if err != nil {
		return 0, backend.RunInfo{}, err
	}
	r.append(Event{
		Op: OpKernelPower, Kernel: k.Name,
		CoreMHz: cfg.CoreMHz, MemMHz: cfg.MemMHz,
		Watts: w, Run: runJSON(info),
	})
	return w, info, nil
}

// SampledIdlePower measures through the inner backend and records the
// reading.
func (r *Recorder) SampledIdlePower(minWall time.Duration) (float64, error) {
	cfg := r.inner.Clocks()
	w, err := r.inner.SampledIdlePower(minWall)
	if err != nil {
		return 0, err
	}
	r.append(Event{Op: OpIdlePower, CoreMHz: cfg.CoreMHz, MemMHz: cfg.MemMHz, Watts: w})
	return w, nil
}

// CollectMetrics collects through the inner backend and records the full
// metric map.
func (r *Recorder) CollectMetrics(k *kernels.KernelSpec) (backend.Metrics, backend.RunInfo, error) {
	cfg := r.inner.Clocks()
	metrics, info, err := r.inner.CollectMetrics(k)
	if err != nil {
		return nil, backend.RunInfo{}, err
	}
	cp := make(map[string]float64, len(metrics))
	for m, v := range metrics {
		cp[m] = v
	}
	r.append(Event{
		Op: OpCollect, Kernel: k.Name,
		CoreMHz: cfg.CoreMHz, MemMHz: cfg.MemMHz,
		Metrics: cp, Run: runJSON(info),
	})
	return metrics, info, nil
}

// RunKernel executes through the inner backend and records the measured
// energy and timing.
func (r *Recorder) RunKernel(k *kernels.KernelSpec) (float64, backend.RunInfo, error) {
	cfg := r.inner.Clocks()
	e, info, err := r.inner.RunKernel(k)
	if err != nil {
		return 0, backend.RunInfo{}, err
	}
	r.append(Event{
		Op: OpRunKernel, Kernel: k.Name,
		CoreMHz: cfg.CoreMHz, MemMHz: cfg.MemMHz,
		EnergyJ: e, Run: runJSON(info),
	})
	return e, info, nil
}

// String summarizes the recorder for diagnostics.
func (r *Recorder) String() string {
	return fmt.Sprintf("trace.Recorder{%s, %d events}", r.inner.Device().Name, r.Len())
}
