package trace

import (
	"fmt"
	"sync"
	"time"

	"gpupower/internal/backend"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
)

// Replayer serves a recorded trace back through the backend.Backend
// interface, with no device in the process.
//
// Matching is keyed, not positional: every recorded measurement is indexed
// by (operation, kernel, clocks-at-call) and served FIFO within its key.
// A replayed consumer that performs the same measurements therefore gets
// the same answers even if harmless reordering (e.g. a different benchmark
// iteration order) occurred — while repeated measurements of the same tuple
// (the paper's median-of-10 loop) replay in recorded order, which is what
// makes a replayed fit bitwise-identical to the live one.
//
// Failure modes are typed: asking for a tuple the recording never performed
// fails with backend.ErrTraceMismatch; asking for more repetitions of a
// tuple than were recorded fails with backend.ErrTraceExhausted; requesting
// an off-ladder clock fails with backend.ErrUnsupportedClock.
// matchKey indexes recorded measurements by (operation, kernel,
// clocks-at-call). It is a comparable struct rather than a formatted
// string: map lookups hash the fields directly, so the per-measurement
// hot path performs no formatting and no allocation.
type matchKey struct {
	op      Op
	kernel  string
	coreMHz float64
	memMHz  float64
}

// eventQueue is a head-indexed FIFO over recorded events. Popping
// advances head instead of re-slicing the backing array, so the queue
// header in the map is never rewritten per pop and the events slice is
// built once at NewReplayer time and never reallocated.
type eventQueue struct {
	events []*Event
	head   int
}

// pop returns the oldest unserved event, or nil when exhausted.
func (q *eventQueue) pop() *Event {
	if q.head >= len(q.events) {
		return nil
	}
	e := q.events[q.head]
	q.head++
	return e
}

type Replayer struct {
	dev *hw.Device

	mu     sync.Mutex
	cfg    hw.Config
	queues map[matchKey]*eventQueue
	served int
	total  int
}

var _ backend.Backend = (*Replayer)(nil)

// NewReplayer builds a replaying backend from a trace.
func NewReplayer(t *Trace) (*Replayer, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	dev, err := hw.DeviceByName(t.Device)
	if err != nil {
		return nil, err
	}
	r := &Replayer{
		dev:    dev,
		cfg:    dev.DefaultConfig(),
		queues: make(map[matchKey]*eventQueue),
	}
	for i := range t.Events {
		e := &t.Events[i]
		if e.Op == OpSetClocks {
			// Clock state is re-derived from the replayed consumer's own
			// SetClocks calls; recorded transitions are provenance only.
			continue
		}
		k := key(e.Op, e.Kernel, hw.Config{CoreMHz: e.CoreMHz, MemMHz: e.MemMHz})
		q, ok := r.queues[k]
		if !ok {
			q = &eventQueue{}
			r.queues[k] = q
		}
		q.events = append(q.events, e)
		r.total++
	}
	return r, nil
}

// Open loads a trace file and returns a replaying backend for it.
func Open(path string) (*Replayer, error) {
	t, err := Load(path)
	if err != nil {
		return nil, err
	}
	return NewReplayer(t)
}

func key(op Op, kernel string, cfg hw.Config) matchKey {
	return matchKey{op: op, kernel: kernel, coreMHz: cfg.CoreMHz, memMHz: cfg.MemMHz}
}

// next pops the oldest unserved event for the key, distinguishing
// never-recorded from exhausted. One map lookup, no map writes: the
// queue is mutated through its pointer by advancing the head index.
func (r *Replayer) next(op Op, kernel string) (*Event, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.queues[key(op, kernel, r.cfg)]
	if !ok {
		return nil, fmt.Errorf("trace: %s %q at %v never recorded: %w", op, kernel, r.cfg, backend.ErrTraceMismatch)
	}
	e := q.pop()
	if e == nil {
		return nil, fmt.Errorf("trace: %s %q at %v: all recorded repetitions consumed: %w",
			op, kernel, r.cfg, backend.ErrTraceExhausted)
	}
	r.served++
	return e, nil
}

// Device returns the catalog hardware description the trace was recorded on.
func (r *Replayer) Device() *hw.Device { return r.dev }

// SetClocks validates against the device ladder and tracks the requested
// state (replay needs no hardware to change clocks).
func (r *Replayer) SetClocks(cfg hw.Config) error {
	if !r.dev.SupportsMemFreq(cfg.MemMHz) {
		return fmt.Errorf("trace: %s: memory clock %g MHz: %w", r.dev.Name, cfg.MemMHz, backend.ErrUnsupportedClock)
	}
	if !r.dev.SupportsCoreFreq(cfg.CoreMHz) {
		return fmt.Errorf("trace: %s: core clock %g MHz: %w", r.dev.Name, cfg.CoreMHz, backend.ErrUnsupportedClock)
	}
	r.mu.Lock()
	r.cfg = cfg
	r.mu.Unlock()
	return nil
}

// Clocks returns the currently requested clocks.
func (r *Replayer) Clocks() hw.Config {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg
}

func (e *Event) runInfo() backend.RunInfo {
	if e.Run == nil {
		return backend.RunInfo{}
	}
	return backend.RunInfo{
		Requested: hw.Config{CoreMHz: e.Run.ReqCoreMHz, MemMHz: e.Run.ReqMemMHz},
		Effective: hw.Config{CoreMHz: e.Run.EffCoreMHz, MemMHz: e.Run.EffMemMHz},
		Seconds:   e.Run.Seconds,
	}
}

// SampledKernelPower replays a recorded power measurement. minWall is
// ignored: the measurement methodology (≥1 s sampling) was applied at
// record time.
func (r *Replayer) SampledKernelPower(k *kernels.KernelSpec, _ time.Duration) (float64, backend.RunInfo, error) {
	e, err := r.next(OpKernelPower, k.Name)
	if err != nil {
		return 0, backend.RunInfo{}, err
	}
	return e.Watts, e.runInfo(), nil
}

// SampledIdlePower replays a recorded idle measurement.
func (r *Replayer) SampledIdlePower(_ time.Duration) (float64, error) {
	e, err := r.next(OpIdlePower, "")
	if err != nil {
		return 0, err
	}
	return e.Watts, nil
}

// CollectMetrics replays a recorded event collection.
func (r *Replayer) CollectMetrics(k *kernels.KernelSpec) (backend.Metrics, backend.RunInfo, error) {
	e, err := r.next(OpCollect, k.Name)
	if err != nil {
		return nil, backend.RunInfo{}, err
	}
	out := make(backend.Metrics, len(e.Metrics))
	for m, v := range e.Metrics {
		out[m] = v
	}
	return out, e.runInfo(), nil
}

// RunKernel replays a recorded kernel execution.
func (r *Replayer) RunKernel(k *kernels.KernelSpec) (float64, backend.RunInfo, error) {
	e, err := r.next(OpRunKernel, k.Name)
	if err != nil {
		return 0, backend.RunInfo{}, err
	}
	return e.EnergyJ, e.runInfo(), nil
}

// Remaining reports how many recorded measurements have not been served yet
// (tests use it to assert a replay consumed what it should).
func (r *Replayer) Remaining() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - r.served
}
