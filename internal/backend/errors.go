package backend

import "errors"

// The shared error taxonomy of the measurement boundary. Backends wrap these
// sentinels (errors.Is-matchable) instead of inventing ad-hoc strings, so
// callers can distinguish a clock-ladder violation from a trace that ran dry
// without parsing messages.
var (
	// ErrUnsupportedClock reports a requested frequency that is not a
	// supported ladder level for the device.
	ErrUnsupportedClock = errors.New("unsupported clock level")

	// ErrThrottled reports a reference-configuration run that was
	// TDP-capped. A throttled reference corrupts the event-to-cycle
	// relation the model assumes, so the profiler surfaces it loudly.
	ErrThrottled = errors.New("reference run throttled")

	// ErrTraceMismatch reports a replayed interaction that the recorded
	// trace has no answer for: the consumer asked for a (kernel,
	// configuration, operation) tuple the recording never performed.
	ErrTraceMismatch = errors.New("trace mismatch")

	// ErrTraceExhausted reports a replayed interaction whose recorded
	// answers were all consumed already — the replay run asked for more
	// measurements than the recording captured.
	ErrTraceExhausted = errors.New("trace exhausted")

	// ErrTraceVersion reports a trace file whose format version this
	// build does not understand.
	ErrTraceVersion = errors.New("unsupported trace version")
)
