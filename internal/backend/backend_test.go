package backend

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestCheckContextLive(t *testing.T) {
	if err := CheckContext(context.Background(), "fit"); err != nil {
		t.Fatalf("live context reported %v", err)
	}
}

func TestCheckContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := CheckContext(ctx, "estimate iteration 3")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "estimate iteration 3") {
		t.Fatalf("err %q lost the operation label", err)
	}
}

func TestCheckContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := CheckContext(ctx, "sweep"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
}
