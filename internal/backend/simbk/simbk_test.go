package simbk

import (
	"errors"
	"testing"
	"time"

	"gpupower/internal/backend"
	"gpupower/internal/cupti"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
)

func open(t *testing.T) *Backend {
	t.Helper()
	b, err := Open("GTX Titan X", 42)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func testKernel() *kernels.KernelSpec {
	return &kernels.KernelSpec{
		Name:            "k",
		WarpInstrs:      map[hw.Component]float64{hw.SP: 2e9, hw.Int: 5e8},
		L2ReadBytes:     5e7,
		DRAMReadBytes:   5e7,
		FixedCycles:     1e5,
		IssueEfficiency: 0.9,
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open("GTX 480", 1); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := New(nil); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestDeviceAndEscapeHatches(t *testing.T) {
	b := open(t)
	if b.Device().Name != "GTX Titan X" {
		t.Fatalf("device = %q", b.Device().Name)
	}
	if b.Sim() == nil || b.Collector() == nil {
		t.Fatal("validation-only escape hatches missing")
	}
}

func TestClockControl(t *testing.T) {
	b := open(t)
	cfg := hw.Config{CoreMHz: 595, MemMHz: 810}
	if err := b.SetClocks(cfg); err != nil {
		t.Fatal(err)
	}
	if got := b.Clocks(); got != cfg {
		t.Fatalf("Clocks() = %v, want %v", got, cfg)
	}
	err := b.SetClocks(hw.Config{CoreMHz: 123, MemMHz: 810})
	if !errors.Is(err, backend.ErrUnsupportedClock) {
		t.Fatalf("off-ladder: err = %v, want wrapped ErrUnsupportedClock", err)
	}
}

func TestMeasurementSurface(t *testing.T) {
	b := open(t)
	k := testKernel()
	dflt := b.Device().DefaultConfig()
	if err := b.SetClocks(dflt); err != nil {
		t.Fatal(err)
	}

	w, info, err := b.SampledKernelPower(k, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 || w > b.Device().TDP {
		t.Fatalf("power %g W outside (0, TDP]", w)
	}
	if info.Requested != dflt || info.Seconds <= 0 {
		t.Fatalf("run summary %+v implausible", info)
	}

	idle, err := b.SampledIdlePower(50 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if idle <= 0 || idle >= w {
		t.Fatalf("idle %g W vs loaded %g W", idle, w)
	}

	metrics, _, err := b.CollectMetrics(k)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range cupti.AllMetrics {
		if _, ok := metrics[string(m)]; !ok {
			t.Fatalf("metric %s missing from the string-keyed view", m)
		}
	}

	e, info, err := b.RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 || info.Seconds <= 0 {
		t.Fatalf("energy %g J over %g s", e, info.Seconds)
	}
	if p := e / info.Seconds; p <= 0 || p > b.Device().TDP {
		t.Fatalf("implied power %g W outside (0, TDP]", p)
	}
}
