// Package simbk adapts the in-process simulator (internal/sim plus its
// nvml/cupti façades) to the backend.Backend measurement interface. It adds
// no behaviour of its own: every method is a thin translation, so fitting a
// model through this adapter is bitwise-identical to driving the simulator
// directly (the serial/parallel equivalence tests and the golden-trace
// round-trip test both pin this down).
package simbk

import (
	"fmt"
	"time"

	"gpupower/internal/backend"
	"gpupower/internal/cupti"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/sim"
)

// Backend is the simulator-backed measurement backend.
type Backend struct {
	dev *sim.Device
	col *cupti.Collector
}

var _ backend.Backend = (*Backend)(nil)

// New wraps a simulated device (and its CUPTI collector) as a Backend.
func New(dev *sim.Device) (*Backend, error) {
	if dev == nil {
		return nil, fmt.Errorf("simbk: nil device")
	}
	col, err := cupti.NewCollector(dev)
	if err != nil {
		return nil, err
	}
	return &Backend{dev: dev, col: col}, nil
}

// Open builds the whole simulator stack for a catalog device: hardware
// description, simulated die (seeded), collector, adapter.
func Open(deviceName string, seed uint64) (*Backend, error) {
	dev, err := hw.DeviceByName(deviceName)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(dev, seed)
	if err != nil {
		return nil, err
	}
	return New(s)
}

// Sim exposes the underlying simulated device for validation-only paths
// (ground-truth breakdowns, third-party voltage readouts). Measurement code
// must stay on the Backend interface.
func (b *Backend) Sim() *sim.Device { return b.dev }

// Collector exposes the CUPTI façade (pass schedules, event tables) for
// code that reports on the collection process itself.
func (b *Backend) Collector() *cupti.Collector { return b.col }

// Device returns the static hardware description.
func (b *Backend) Device() *hw.Device { return b.dev.HW() }

// SetClocks requests application clocks on the simulated die.
func (b *Backend) SetClocks(cfg hw.Config) error {
	return b.dev.SetClocks(cfg.MemMHz, cfg.CoreMHz)
}

// Clocks returns the currently requested application clocks.
func (b *Backend) Clocks() hw.Config { return b.dev.Clocks() }

// SampledKernelPower measures one kernel with the paper's sampling loop.
func (b *Backend) SampledKernelPower(k *kernels.KernelSpec, minWall time.Duration) (float64, backend.RunInfo, error) {
	w, run, err := b.dev.SampledAveragePower(k, minWall)
	if err != nil {
		return 0, backend.RunInfo{}, err
	}
	return w, runInfo(run), nil
}

// SampledIdlePower measures the awake-but-idle device.
func (b *Backend) SampledIdlePower(minWall time.Duration) (float64, error) {
	return b.dev.SampledIdlePower(minWall), nil
}

// CollectMetrics gathers the Table I metrics for one kernel.
func (b *Backend) CollectMetrics(k *kernels.KernelSpec) (backend.Metrics, backend.RunInfo, error) {
	metrics, run, err := b.col.CollectMetrics(k)
	if err != nil {
		return nil, backend.RunInfo{}, err
	}
	out := make(backend.Metrics, len(metrics))
	for m, v := range metrics {
		out[string(m)] = v
	}
	return out, runInfo(run), nil
}

// RunKernel executes one launch at the current clocks and integrates its
// energy (the quantity behind NVML's total-energy counter).
func (b *Backend) RunKernel(k *kernels.KernelSpec) (float64, backend.RunInfo, error) {
	run, err := b.dev.Execute(k)
	if err != nil {
		return 0, backend.RunInfo{}, err
	}
	return run.TruePower * run.Exec.Seconds(), runInfo(run), nil
}

// runInfo projects the simulator's ground-truth RunResult onto the portable
// measurement summary.
func runInfo(r *sim.RunResult) backend.RunInfo {
	return backend.RunInfo{
		Requested: r.Requested,
		Effective: r.Effective,
		Seconds:   r.Exec.Seconds(),
	}
}
