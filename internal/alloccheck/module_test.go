package alloccheck_test

import (
	"bytes"
	"testing"

	"gpupower/internal/alloccheck"
	"gpupower/internal/lint"
	"gpupower/internal/lint/linttest"
)

// checkModule proves the module rooted at dir with a fresh loader and
// checker, the same configuration cmd/alloccheck uses (no _test.go files).
func checkModule(t *testing.T, dir, modPath string) *alloccheck.Result {
	t.Helper()
	loader := lint.NewLoader(dir, modPath)
	loader.Tests = false
	c, err := alloccheck.NewChecker(loader, modPath)
	if err != nil {
		t.Fatalf("load module at %s: %v", dir, err)
	}
	return c.Check()
}

// TestModuleHotPathsProven is the in-repo gate: every annotated hot-path
// root in the real module must prove allocation-free at HEAD, with no
// malformed or dead directives.
func TestModuleHotPathsProven(t *testing.T) {
	root, modPath := linttest.ModuleRoot(t)
	res := checkModule(t, root, modPath)
	if !res.Clean() {
		var b bytes.Buffer
		if err := res.WriteText(&b, root); err != nil {
			t.Fatalf("render report: %v", err)
		}
		t.Fatalf("module hot paths not proven:\n%s", b.String())
	}
	if res.RootCount < 10 {
		t.Fatalf("only %d annotated roots; the hot-path sweep requires at least 10", res.RootCount)
	}
	if res.FunctionsWalked < res.RootCount {
		t.Fatalf("walked %d functions for %d roots; the interprocedural walk went nowhere", res.FunctionsWalked, res.RootCount)
	}
}

// TestModuleOutputDeterministic runs two fully independent proofs over the
// module and requires byte-identical text and JSON reports.
func TestModuleOutputDeterministic(t *testing.T) {
	root, modPath := linttest.ModuleRoot(t)

	var text1, text2, json1, json2 bytes.Buffer
	res1 := checkModule(t, root, modPath)
	if err := res1.WriteText(&text1, root); err != nil {
		t.Fatal(err)
	}
	if err := res1.WriteJSON(&json1, root); err != nil {
		t.Fatal(err)
	}
	res2 := checkModule(t, root, modPath)
	if err := res2.WriteText(&text2, root); err != nil {
		t.Fatal(err)
	}
	if err := res2.WriteJSON(&json2, root); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(text1.Bytes(), text2.Bytes()) {
		t.Errorf("text reports differ across runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", text1.String(), text2.String())
	}
	if !bytes.Equal(json1.Bytes(), json2.Bytes()) {
		t.Errorf("JSON reports differ across runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", json1.String(), json2.String())
	}
}
