package alloccheck

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"gpupower/internal/lint"
)

// relPath shortens name relative to base for readable, stable reports
// (mirrors internal/lint/report.go).
func relPath(base, name string) string {
	if base == "" {
		return name
	}
	if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

func fmtPos(base string, pos token.Position) string {
	return fmt.Sprintf("%s:%d:%d", relPath(base, pos.Filename), pos.Line, pos.Column)
}

// renderSite prints one finding, following the propagation chain of
// call-shaped sites down to the direct allocation that seeds it.
func renderSite(base string, s *Site) string {
	msg := s.Msg
	for u, depth := s.Underlying, 0; u != nil && depth < 8; u, depth = u.Underlying, depth+1 {
		msg += fmt.Sprintf(" <- %s: [%s] %s", fmtPos(base, u.Pos), u.Cat, u.Msg)
	}
	return msg
}

// WriteText renders a proof run in the position-ordered text form: one line
// per root, indented findings for unproven roots, directive errors, and a
// closing summary. Two runs over the same tree are byte-identical.
func (r *Result) WriteText(w io.Writer, base string) error {
	for i := range r.Roots {
		rr := &r.Roots[i]
		if rr.Proven {
			if _, err := fmt.Fprintf(w, "%s: root %s: proven allocation-free (%d functions, %d escape hatches)\n",
				fmtPos(base, rr.Pos), rr.Func, rr.Functions, rr.Hatches); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s: root %s: NOT proven (%d findings)\n",
			fmtPos(base, rr.Pos), rr.Func, len(rr.Findings)); err != nil {
			return err
		}
		for j := range rr.Findings {
			s := &rr.Findings[j]
			if _, err := fmt.Fprintf(w, "\t%s: [%s] %s\n",
				fmtPos(base, s.Pos), s.Cat, renderSite(base, s)); err != nil {
				return err
			}
		}
	}
	for _, e := range r.DirectiveErrors {
		if _, err := fmt.Fprintf(w, "%s\n", relErrPath(base, e)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "alloccheck: %d roots, %d proven, %d escape hatches, %d functions walked\n",
		r.RootCount, r.ProvenCount, r.HatchesUsed, r.FunctionsWalked)
	return err
}

// relErrPath rewrites the leading file path of a "file:line:col: msg"
// directive error relative to base.
func relErrPath(base, e string) string {
	i := strings.Index(e, ": ")
	if i < 0 {
		return e
	}
	head, tail := e[:i], e[i:]
	parts := strings.Split(head, ":")
	if len(parts) < 3 {
		return e
	}
	file := strings.Join(parts[:len(parts)-2], ":")
	return relPath(base, file) + ":" + parts[len(parts)-2] + ":" + parts[len(parts)-1] + tail
}

// jsonPosition is the wire form of a token.Position.
type jsonPosition struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

type jsonSite struct {
	Category     Category     `json:"category"`
	Pos          jsonPosition `json:"pos"`
	Message      string       `json:"message"`
	Callee       string       `json:"callee,omitempty"`
	Underlying   *jsonSite    `json:"underlying,omitempty"`
	SuppressedBy string       `json:"suppressed_by,omitempty"`
}

type jsonRoot struct {
	Func      string       `json:"func"`
	Pos       jsonPosition `json:"pos"`
	Proven    bool         `json:"proven"`
	Functions int          `json:"functions"`
	Hatches   int          `json:"hatches"`
	Findings  []jsonSite   `json:"findings"`
}

type jsonResult struct {
	Roots           []jsonRoot `json:"roots"`
	DirectiveErrors []string   `json:"directive_errors"`
	RootCount       int        `json:"root_count"`
	ProvenCount     int        `json:"proven_count"`
	HatchesUsed     int        `json:"hatches_used"`
	FunctionsWalked int        `json:"functions_walked"`
}

func toJSONPos(base string, pos token.Position) jsonPosition {
	return jsonPosition{File: relPath(base, pos.Filename), Line: pos.Line, Column: pos.Column}
}

func toJSONSite(base string, s *Site, depth int) jsonSite {
	js := jsonSite{
		Category:     s.Cat,
		Pos:          toJSONPos(base, s.Pos),
		Message:      s.Msg,
		Callee:       s.Callee,
		SuppressedBy: s.SuppressedBy,
	}
	if s.Underlying != nil && depth < 8 {
		u := toJSONSite(base, s.Underlying, depth+1)
		js.Underlying = &u
	}
	return js
}

// WriteJSON renders a proof run as indented JSON with paths relative to
// base; slices are always present (never null) so consumers can index
// without nil checks.
func (r *Result) WriteJSON(w io.Writer, base string) error {
	out := jsonResult{
		Roots:           []jsonRoot{},
		DirectiveErrors: r.DirectiveErrors,
		RootCount:       r.RootCount,
		ProvenCount:     r.ProvenCount,
		HatchesUsed:     r.HatchesUsed,
		FunctionsWalked: r.FunctionsWalked,
	}
	if out.DirectiveErrors == nil {
		out.DirectiveErrors = []string{}
	} else {
		rel := make([]string, len(out.DirectiveErrors))
		for i, e := range out.DirectiveErrors {
			rel[i] = relErrPath(base, e)
		}
		out.DirectiveErrors = rel
	}
	for i := range r.Roots {
		rr := &r.Roots[i]
		jr := jsonRoot{
			Func:      rr.Func,
			Pos:       toJSONPos(base, rr.Pos),
			Proven:    rr.Proven,
			Functions: rr.Functions,
			Hatches:   rr.Hatches,
			Findings:  []jsonSite{},
		}
		for j := range rr.Findings {
			jr.Findings = append(jr.Findings, toJSONSite(base, &rr.Findings[j], 0))
		}
		out.Roots = append(out.Roots, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// FuncInventory is the raw allocation-site inventory of one function for
// the observability -report mode: every direct site, including the ones an
// escape hatch suppresses (marked with the hatch's reason).
type FuncInventory struct {
	Func  string         `json:"func"`
	Pos   token.Position `json:"-"`
	Sites []Site         `json:"sites"`
}

// Inventory lists the direct allocation sites of every function in the
// given packages, position-ordered. In-module static calls are omitted
// (prove mode walks them); dynamic, external, and formatting calls appear
// as the conservative sites they are.
func Inventory(pkgs []*lint.Package, modPath string) []FuncInventory {
	c := newChecker(pkgs, modPath)
	var out []FuncInventory
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				raw, _ := collectSites(pkg, c.units, modPath, fd)
				for i := range raw {
					if h := c.coveringHatch(raw[i].Pos); h != nil {
						raw[i].SuppressedBy = h.reason
					}
				}
				if len(raw) == 0 {
					continue
				}
				sortSites(raw)
				out = append(out, FuncInventory{
					Func:  fn.FullName(),
					Pos:   pkg.Fset.Position(fd.Pos()),
					Sites: raw,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// WriteInventoryText renders a -report inventory.
func WriteInventoryText(w io.Writer, base string, inv []FuncInventory) error {
	total, suppressed := 0, 0
	for i := range inv {
		fi := &inv[i]
		if _, err := fmt.Fprintf(w, "%s: func %s: %d sites\n",
			fmtPos(base, fi.Pos), fi.Func, len(fi.Sites)); err != nil {
			return err
		}
		for j := range fi.Sites {
			s := &fi.Sites[j]
			total++
			note := ""
			if s.SuppressedBy != "" {
				suppressed++
				note = fmt.Sprintf(" (suppressed: %s)", s.SuppressedBy)
			}
			if _, err := fmt.Fprintf(w, "\t%s: [%s] %s%s\n",
				fmtPos(base, s.Pos), s.Cat, s.Msg, note); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "alloccheck -report: %d functions with sites, %d sites (%d suppressed)\n",
		len(inv), total, suppressed)
	return err
}

// WriteInventoryJSON renders a -report inventory as indented JSON.
func WriteInventoryJSON(w io.Writer, base string, inv []FuncInventory) error {
	type jsonFunc struct {
		Func  string       `json:"func"`
		Pos   jsonPosition `json:"pos"`
		Sites []jsonSite   `json:"sites"`
	}
	out := []jsonFunc{}
	for i := range inv {
		jf := jsonFunc{Func: inv[i].Func, Pos: toJSONPos(base, inv[i].Pos), Sites: []jsonSite{}}
		for j := range inv[i].Sites {
			jf.Sites = append(jf.Sites, toJSONSite(base, &inv[i].Sites[j], 0))
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
