package alloccheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"gpupower/internal/lint"
)

// The two alloccheck directives mirror the //lint:ignore discipline
// (internal/lint/ignore.go): mandatory reasons, tight line scoping, and a
// hard error for suppressions that stop suppressing anything.
const (
	// noallocPrefix marks a function as an allocation-freedom root: the
	// checker walks its whole call graph and proves no reachable
	// statement can allocate. It must appear in the function's doc
	// comment; an optional free-text note may follow.
	noallocPrefix = "//gpower:noalloc"
	// allocsPrefix is the call-site escape hatch. It suppresses every
	// allocation site on its own line (trailing form) or on the line
	// immediately below (standalone form), and the reason is mandatory.
	allocsPrefix = "//gpower:allocs"
)

// hatch is one parsed //gpower:allocs directive.
type hatch struct {
	reason string
	pos    token.Position
}

// covers reports whether the hatch suppresses a site at pos: same file,
// same line or the line immediately below the directive.
func (h *hatch) covers(pos token.Position) bool {
	return pos.Filename == h.pos.Filename && (pos.Line == h.pos.Line || pos.Line == h.pos.Line+1)
}

// directives holds every parsed annotation of one package plus the parse
// errors that make a run fail regardless of findings.
type directives struct {
	hatches []*hatch
	errs    []string
}

// hasDirective reports whether a comment is the given alloccheck directive
// (exact match or followed by whitespace — //gpower:noallocXYZ is not ours).
func hasDirective(text, prefix string) bool {
	if !strings.HasPrefix(text, prefix) {
		return false
	}
	rest := strings.TrimPrefix(text, prefix)
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// isNoallocRoot reports whether a function declaration carries the
// //gpower:noalloc directive in its doc comment.
func isNoallocRoot(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if hasDirective(c.Text, noallocPrefix) {
			return true
		}
	}
	return false
}

// parseDirectives extracts the alloccheck directives of one package. A
// //gpower:allocs without a reason is an error; a //gpower:noalloc outside a
// function doc comment is an error (it would silently guard nothing).
func parseDirectives(pkg *lint.Package) directives {
	// Positions of comments that belong to some function's doc group,
	// so stray noalloc directives can be told apart from real roots.
	docComments := make(map[token.Pos]bool)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				docComments[c.Pos()] = true
			}
		}
	}

	var ds directives
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				switch {
				case hasDirective(c.Text, allocsPrefix):
					reason := strings.TrimSpace(strings.TrimPrefix(c.Text, allocsPrefix))
					if reason == "" {
						ds.errs = append(ds.errs, fmt.Sprintf(
							"%s:%d:%d: %s is missing the mandatory reason",
							pos.Filename, pos.Line, pos.Column, allocsPrefix))
						continue
					}
					ds.hatches = append(ds.hatches, &hatch{reason: reason, pos: pos})
				case hasDirective(c.Text, noallocPrefix):
					if !docComments[c.Pos()] {
						ds.errs = append(ds.errs, fmt.Sprintf(
							"%s:%d:%d: misplaced %s: the directive must be part of a function's doc comment",
							pos.Filename, pos.Line, pos.Column, noallocPrefix))
					}
				}
			}
		}
	}
	return ds
}
