package alloccheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gpupower/internal/lint"
)

// Category classifies an allocation site. The taxonomy is deliberately
// conservative: every construct that *may* allocate under some compilation of
// the function is a site, even when escape analysis would keep a particular
// instance on the stack. A proof of allocation-freedom must survive the
// worst case; the dynamic AllocsPerRun tests remain the measurement oracle
// for what the compiler actually does (DESIGN.md §13).
type Category string

const (
	// CatMake is a make() of a slice, map, or channel.
	CatMake Category = "make"
	// CatNew is a new(T).
	CatNew Category = "new"
	// CatAppend is any append: the checker cannot prove capacity headroom,
	// so every append is a potential grow-and-copy.
	CatAppend Category = "append"
	// CatComposite is an escaping composite literal: &T{...}, or a slice or
	// map literal (which always materializes backing storage).
	CatComposite Category = "composite"
	// CatMapInsert is an assignment through a map index expression.
	CatMapInsert Category = "map-insert"
	// CatStringConcat is string concatenation via + or +=.
	CatStringConcat Category = "string-concat"
	// CatStringConv is an allocating string conversion
	// (string<->[]byte/[]rune, string(int)).
	CatStringConv Category = "string-conv"
	// CatIfaceBox is a conversion of a non-pointer concrete value into an
	// interface, which boxes the value on the heap.
	CatIfaceBox Category = "iface-box"
	// CatClosure is a func literal that captures variables, or a bound
	// method value; both materialize a closure object.
	CatClosure Category = "closure"
	// CatVariadic is a call that materializes an implicit []T for a
	// variadic parameter.
	CatVariadic Category = "variadic"
	// CatDeferLoop is a defer inside a loop (heap-allocated defer record;
	// a function-level defer is open-coded and free).
	CatDeferLoop Category = "defer-loop"
	// CatChan is a channel operation (send, receive, select, range).
	CatChan Category = "chan"
	// CatGo is a go statement (new goroutine: stack + defer structures).
	CatGo Category = "go"
	// CatFormat is a call into fmt, errors, or strconv formatting, which
	// allocates its result (and boxes its operands).
	CatFormat Category = "format"
	// CatExtern is a call to a function outside the module that is not on
	// the allocation-free allowlist; the checker has no body to walk and
	// assumes the worst.
	CatExtern Category = "extern-call"
	// CatDynamic is a call through an interface method or a func value;
	// the callee is unresolvable statically and assumed to allocate.
	CatDynamic Category = "dynamic-call"
	// CatCall is a call to an in-module function that is itself not proven
	// allocation-free; Underlying chains to the callee's first finding.
	CatCall Category = "call"
)

// Site is one potential allocation, resolved to a stable source position.
type Site struct {
	Cat Category       `json:"category"`
	Pos token.Position `json:"-"`
	Msg string         `json:"message"`
	// Callee is the full name of the called function for call-shaped
	// categories (call, extern-call, dynamic-call, format).
	Callee string `json:"callee,omitempty"`
	// Underlying is the callee's first finding for CatCall sites: the
	// next hop of the propagation chain down to a direct site.
	Underlying *Site `json:"underlying,omitempty"`
	// SuppressedBy carries the escape-hatch reason in inventory (-report)
	// mode; sites with a suppression never appear in prove-mode findings.
	SuppressedBy string `json:"suppressed_by,omitempty"`
}

// callEdge is a statically-resolved call to an in-module function.
type callEdge struct {
	pos   token.Position
	fn    *types.Func // Origin() of the callee
	name  string
	hatch *hatch // covering //gpower:allocs directive, if any
}

// siteCollector walks one function body and records direct allocation
// sites plus in-module call edges. It is purely intra-procedural.
type siteCollector struct {
	pkg     *lint.Package
	units   map[*types.Func]*funcUnit
	modPath string
	decl    *ast.FuncDecl

	sites []Site
	calls []callEdge

	// callFuns marks expressions in call-operand position so method-value
	// selectors used as calls are not double-flagged as bound closures.
	callFuns map[ast.Expr]bool
}

func collectSites(pkg *lint.Package, units map[*types.Func]*funcUnit, modPath string, decl *ast.FuncDecl) ([]Site, []callEdge) {
	sc := &siteCollector{
		pkg:      pkg,
		units:    units,
		modPath:  modPath,
		decl:     decl,
		callFuns: make(map[ast.Expr]bool),
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			sc.callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})
	sc.walk(decl.Body, 0)
	return sc.sites, sc.calls
}

func (sc *siteCollector) pos(p token.Pos) token.Position { return sc.pkg.Fset.Position(p) }

func (sc *siteCollector) add(p token.Pos, cat Category, format string, args ...any) {
	sc.sites = append(sc.sites, Site{Cat: cat, Pos: sc.pos(p), Msg: fmt.Sprintf(format, args...)})
}

func (sc *siteCollector) addCall(p token.Pos, cat Category, callee, format string, args ...any) {
	sc.sites = append(sc.sites, Site{Cat: cat, Pos: sc.pos(p), Callee: callee, Msg: fmt.Sprintf(format, args...)})
}

func (sc *siteCollector) typeOf(e ast.Expr) types.Type { return sc.pkg.Info.TypeOf(e) }

func (sc *siteCollector) qual() types.Qualifier { return types.RelativeTo(sc.pkg.Types) }

// walk recurses manually so loop depth (for defer-in-loop detection) is
// tracked without a node stack.
func (sc *siteCollector) walk(n ast.Node, loopDepth int) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.ForStmt:
		sc.walk(n.Init, loopDepth)
		sc.walk(n.Cond, loopDepth)
		sc.walk(n.Post, loopDepth)
		sc.walk(n.Body, loopDepth+1)
		return
	case *ast.RangeStmt:
		if t := sc.typeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				sc.add(n.Pos(), CatChan, "range over a channel")
			}
		}
		sc.walk(n.X, loopDepth)
		sc.walk(n.Body, loopDepth+1)
		return
	case *ast.DeferStmt:
		if loopDepth > 0 {
			sc.add(n.Pos(), CatDeferLoop, "defer inside a loop heap-allocates its record each iteration")
		}
		sc.walk(n.Call, loopDepth)
		return
	case *ast.GoStmt:
		sc.add(n.Pos(), CatGo, "go statement spawns a goroutine")
		sc.walk(n.Call, loopDepth)
		return
	case *ast.SendStmt:
		sc.add(n.Pos(), CatChan, "channel send")
	case *ast.SelectStmt:
		sc.add(n.Pos(), CatChan, "select over channel operations")
	case *ast.UnaryExpr:
		switch n.Op {
		case token.ARROW:
			sc.add(n.Pos(), CatChan, "channel receive")
		case token.AND:
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				sc.add(n.Pos(), CatComposite, "&%s{...} escapes to the heap (conservatively assumed)",
					types.TypeString(sc.typeOf(lit), sc.qual()))
			}
		}
	case *ast.CompositeLit:
		if t := sc.typeOf(n); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				sc.add(n.Pos(), CatComposite, "slice literal allocates its backing array")
			case *types.Map:
				sc.add(n.Pos(), CatComposite, "map literal allocates the map")
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isString(sc.typeOf(n)) {
			sc.add(n.Pos(), CatStringConcat, "string concatenation allocates the result")
		}
	case *ast.AssignStmt:
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(sc.typeOf(n.Lhs[0])) {
			sc.add(n.Pos(), CatStringConcat, "string += allocates the result")
		}
		for _, lhs := range n.Lhs {
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				if t := sc.typeOf(ix.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						sc.add(lhs.Pos(), CatMapInsert, "map insert may grow the bucket array")
					}
				}
			}
		}
		if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				sc.checkBox(n.Rhs[i], sc.typeOf(n.Lhs[i]), "assignment")
			}
		}
	case *ast.ValueSpec:
		if n.Type != nil && len(n.Values) == len(n.Names) {
			dst := sc.typeOf(n.Type)
			for _, v := range n.Values {
				sc.checkBox(v, dst, "declaration")
			}
		}
	case *ast.ReturnStmt:
		sc.checkReturnBox(n)
	case *ast.FuncLit:
		if sc.captures(n) {
			sc.add(n.Pos(), CatClosure, "func literal captures variables: the closure escapes conservatively")
		}
		// The body is still walked: allocations inside run when the
		// closure is invoked, and hot paths invoke what they build.
	case *ast.SelectorExpr:
		if !sc.callFuns[ast.Expr(n)] {
			if sel, ok := sc.pkg.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				sc.add(n.Pos(), CatClosure, "bound method value %s.%s allocates a closure",
					types.TypeString(sel.Recv(), sc.qual()), sel.Obj().Name())
			}
		}
	case *ast.CallExpr:
		sc.checkCall(n)
	}
	// Generic recursion over children for everything not returned above.
	sc.walkChildren(n, loopDepth)
}

// walkChildren recurses into n's children at the given loop depth, using
// ast.Inspect one level deep.
func (sc *siteCollector) walkChildren(n ast.Node, loopDepth int) {
	first := true
	ast.Inspect(n, func(child ast.Node) bool {
		if first {
			first = false
			return true // n itself
		}
		if child == nil {
			return false
		}
		sc.walk(child, loopDepth)
		return false // sc.walk already recursed
	})
}

// checkCall classifies one call expression: builtin, conversion, static
// (allowlisted / format / in-module edge / extern), or dynamic.
func (sc *siteCollector) checkCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	tv, ok := sc.pkg.Info.Types[call.Fun]
	if !ok {
		sc.add(call.Pos(), CatExtern, "call with no type information: assumed to allocate")
		return
	}
	if tv.IsType() {
		sc.checkConversion(call)
		return
	}
	if tv.IsBuiltin() {
		sc.checkBuiltin(call, fun)
		return
	}

	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := sc.pkg.Info.Uses[f].(type) {
		case *types.Func:
			sc.checkStaticCall(call, obj)
		case *types.Var:
			sc.addCall(call.Pos(), CatDynamic, f.Name,
				"call through func value %s: callee unresolvable, assumed to allocate", f.Name)
		default:
			sc.addCall(call.Pos(), CatDynamic, f.Name,
				"unresolvable call to %s: assumed to allocate", f.Name)
		}
	case *ast.SelectorExpr:
		if sel, ok := sc.pkg.Info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
					sc.addCall(call.Pos(), CatDynamic, sel.Obj().Name(),
						"interface method call %s.%s: dynamic dispatch, assumed to allocate",
						types.TypeString(sel.Recv(), sc.qual()), sel.Obj().Name())
					return
				}
				if fn, ok := sel.Obj().(*types.Func); ok {
					sc.checkStaticCall(call, fn)
					return
				}
			case types.FieldVal:
				sc.addCall(call.Pos(), CatDynamic, f.Sel.Name,
					"call through func-valued field %s: assumed to allocate", f.Sel.Name)
				return
			}
			sc.addCall(call.Pos(), CatDynamic, f.Sel.Name,
				"unresolvable method expression call: assumed to allocate")
			return
		}
		// Package-qualified call: pkg.F(...).
		if fn, ok := sc.pkg.Info.Uses[f.Sel].(*types.Func); ok {
			sc.checkStaticCall(call, fn)
			return
		}
		if _, ok := sc.pkg.Info.Uses[f.Sel].(*types.Var); ok {
			sc.addCall(call.Pos(), CatDynamic, f.Sel.Name,
				"call through package-level func value %s: assumed to allocate", f.Sel.Name)
			return
		}
		sc.addCall(call.Pos(), CatExtern, f.Sel.Name,
			"unresolvable call to %s: assumed to allocate", f.Sel.Name)
	case *ast.FuncLit:
		// Immediately-invoked literal: the body was walked where it
		// appears; the call adds nothing beyond the literal's own sites.
	default:
		sc.add(call.Pos(), CatDynamic, "call through computed function expression: assumed to allocate")
	}
}

func (sc *siteCollector) checkStaticCall(call *ast.CallExpr, fn *types.Func) {
	orig := fn.Origin()
	if allowlisted(orig) {
		return
	}
	name := orig.FullName()
	if pkg := orig.Pkg(); pkg != nil && formatPackage(pkg.Path()) {
		sc.addCall(call.Pos(), CatFormat, name, "call to %s may allocate (formatting package)", name)
		return
	}
	if _, inModule := sc.units[orig]; inModule {
		sc.calls = append(sc.calls, callEdge{pos: sc.pos(call.Pos()), fn: orig, name: name})
		sc.checkVariadic(call, name)
		sc.checkArgBoxing(call)
		return
	}
	if pkg := orig.Pkg(); pkg != nil && sc.modPath != "" &&
		(pkg.Path() == sc.modPath || strings.HasPrefix(pkg.Path(), sc.modPath+"/")) {
		// Inventory mode over a package subset: the callee is in-module
		// but its body was not loaded here; prove mode walks it.
		sc.addCall(call.Pos(), CatCall, name,
			"call to %s: in-module but outside the analyzed packages", name)
		return
	}
	sc.addCall(call.Pos(), CatExtern, name,
		"call to %s: outside the module and not on the allocation-free allowlist", name)
}

// checkVariadic flags the implicit []T materialized when a variadic callee
// receives one or more loose arguments (a spread call reuses the caller's
// slice and is free).
func (sc *siteCollector) checkVariadic(call *ast.CallExpr, name string) {
	sig, ok := sc.typeOf(call.Fun).Underlying().(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis.IsValid() {
		return
	}
	if len(call.Args) >= sig.Params().Len() {
		sc.addCall(call.Pos(), CatVariadic, name,
			"variadic call to %s materializes an implicit slice for its trailing arguments", name)
	}
}

// checkArgBoxing flags concrete non-pointer arguments passed to interface
// parameters of statically-resolved in-module calls.
func (sc *siteCollector) checkArgBoxing(call *ast.CallExpr) {
	sig, ok := sc.typeOf(call.Fun).Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && !call.Ellipsis.IsValid():
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if pt != nil {
			sc.checkBox(arg, pt, "argument")
		}
	}
}

func (sc *siteCollector) checkReturnBox(ret *ast.ReturnStmt) {
	sig := sc.enclosingSignature(ret)
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return // naked return or multi-value forwarding: no conversion here
	}
	for i, res := range ret.Results {
		sc.checkBox(res, sig.Results().At(i).Type(), "return")
	}
}

// enclosingSignature finds the signature governing a return statement: the
// innermost func literal containing it, else the declared function.
func (sc *siteCollector) enclosingSignature(ret *ast.ReturnStmt) *types.Signature {
	var innermost *ast.FuncLit
	ast.Inspect(sc.decl.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			if lit.Pos() <= ret.Pos() && ret.End() <= lit.End() {
				innermost = lit // keep descending: deeper literals win
			}
		}
		return true
	})
	if innermost != nil {
		if sig, ok := sc.typeOf(innermost).(*types.Signature); ok {
			return sig
		}
		return nil
	}
	if fn, ok := sc.pkg.Info.Defs[sc.decl.Name].(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		return sig
	}
	return nil
}

// checkBox flags src converting into interface type dst when src's static
// type is a concrete non-pointer-shaped value.
func (sc *siteCollector) checkBox(src ast.Expr, dst types.Type, context string) {
	if dst == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	tv, ok := sc.pkg.Info.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	st := tv.Type
	if st == types.Typ[types.UntypedNil] {
		return
	}
	if _, isIface := st.Underlying().(*types.Interface); isIface {
		return // interface-to-interface carries the existing box
	}
	if pointerShaped(st) {
		return // the value fits the interface data word: no heap copy
	}
	sc.add(src.Pos(), CatIfaceBox, "%s boxes %s into %s",
		context, types.TypeString(st, sc.qual()), types.TypeString(dst, sc.qual()))
}

func (sc *siteCollector) checkBuiltin(call *ast.CallExpr, fun ast.Expr) {
	name := ""
	switch f := fun.(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name // unsafe.Sizeof etc.
	}
	switch name {
	case "make":
		sc.add(call.Pos(), CatMake, "make(%s) allocates", types.TypeString(sc.typeOf(call), sc.qual()))
	case "new":
		sc.add(call.Pos(), CatNew, "new(%s) allocates", types.TypeString(sc.typeOf(call), sc.qual()))
	case "append":
		sc.add(call.Pos(), CatAppend, "append may grow the backing array")
	case "print", "println":
		sc.add(call.Pos(), CatFormat, "builtin %s formats its operands", name)
	case "panic":
		// The panic record itself ends the steady state; only the
		// operand boxing is a live concern.
		if len(call.Args) == 1 {
			sc.checkBox(call.Args[0], types.NewInterfaceType(nil, nil), "panic operand")
		}
	}
	// len/cap/copy/delete/clear/min/max/real/imag/complex/recover: free.
}

// captures reports whether a func literal references any variable declared
// in the enclosing function (parameters, receiver, or locals outside the
// literal). Non-capturing literals compile to static functions.
func (sc *siteCollector) captures(lit *ast.FuncLit) bool {
	declStart, declEnd := sc.decl.Pos(), sc.decl.End()
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := sc.pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		p := v.Pos()
		if p >= declStart && p < declEnd && !(p >= lit.Pos() && p < lit.End()) {
			captured = true
		}
		return true
	})
	return captured
}

func (sc *siteCollector) checkConversion(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	dst := sc.typeOf(call)
	arg := call.Args[0]
	src := sc.typeOf(arg)
	if dst == nil || src == nil {
		return
	}
	if tv, ok := sc.pkg.Info.Types[arg]; ok && tv.Value != nil {
		return // constant-folded conversion
	}
	du, su := dst.Underlying(), src.Underlying()
	if _, isIface := du.(*types.Interface); isIface {
		sc.checkBox(arg, dst, "conversion")
		return
	}
	switch {
	case isString(dst) && (isByteOrRuneSlice(su) || isInteger(su)):
		sc.add(call.Pos(), CatStringConv, "conversion %s -> string allocates",
			types.TypeString(src, sc.qual()))
	case isByteOrRuneSlice(du) && isString(src):
		sc.add(call.Pos(), CatStringConv, "conversion string -> %s allocates",
			types.TypeString(dst, sc.qual()))
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInteger(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// pointerShaped reports whether boxing t into an interface reuses the value
// as the interface data word instead of heap-copying it.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}

// allowlisted names the external functions the checker trusts not to
// allocate: pure math, atomic loads/stores/CAS, mutex lock operations, and
// a handful of runtime reads. Everything else outside the module is
// conservatively assumed to allocate.
func allowlisted(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "math", "math/bits", "sync/atomic":
		return true
	case "runtime":
		return fn.Name() == "GOMAXPROCS" || fn.Name() == "NumCPU" || fn.Name() == "Gosched"
	case "time":
		switch fn.Name() {
		case "Seconds", "Milliseconds", "Microseconds", "Nanoseconds", "Since":
			return true
		}
		return false
	case "sync":
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return false
		}
		if recv := sig.Recv(); recv != nil {
			rt := recv.Type().String()
			if strings.Contains(rt, "Mutex") {
				switch fn.Name() {
				case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
					return true
				}
			}
		}
		return false
	}
	return false
}

// formatPackage reports whether path is one of the formatting packages the
// taxonomy calls out explicitly: every call into them allocates.
func formatPackage(path string) bool {
	switch path {
	case "fmt", "errors", "strconv":
		return true
	}
	return false
}
