package alloccheck

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"

	"gpupower/internal/lint"
)

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// FindModule walks upward from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (string, string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			m := moduleRe.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("no module directive in %s", filepath.Join(abs, "go.mod"))
			}
			return abs, string(m[1]), nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod found above %s (run from inside the module)", dir)
		}
		abs = parent
	}
}

// CheckModule proves every annotated root of the module enclosing dir over
// its production sources (_test.go files excluded) — the embedded
// equivalent of `alloccheck ./...`. It returns the result and the module
// root, for rendering positions relative to it.
func CheckModule(dir string) (*Result, string, error) {
	root, modPath, err := FindModule(dir)
	if err != nil {
		return nil, "", err
	}
	loader := lint.NewLoader(root, modPath)
	loader.Tests = false
	c, err := NewChecker(loader, modPath)
	if err != nil {
		return nil, "", err
	}
	return c.Check(), root, nil
}
