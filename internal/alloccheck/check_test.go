package alloccheck_test

import (
	"path/filepath"
	"strings"
	"testing"

	"gpupower/internal/alloccheck"
	"gpupower/internal/lint"
)

// runFixture proves a GOPATH-style fixture tree under testdata/<name>/src.
func runFixture(t *testing.T, fixture string) *alloccheck.Result {
	t.Helper()
	loader := lint.NewLoader(filepath.Join("testdata", fixture, "src"), "")
	c, err := alloccheck.NewChecker(loader, "")
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}
	return c.Check()
}

func rootsByName(t *testing.T, res *alloccheck.Result) map[string]*alloccheck.RootResult {
	t.Helper()
	m := make(map[string]*alloccheck.RootResult, len(res.Roots))
	for i := range res.Roots {
		m[res.Roots[i].Func] = &res.Roots[i]
	}
	return m
}

// chainEnd follows a finding's Underlying chain to the direct site that
// started the propagation.
func chainEnd(s *alloccheck.Site) *alloccheck.Site {
	for s.Underlying != nil {
		s = s.Underlying
	}
	return s
}

func hasCategory(r *alloccheck.RootResult, cat alloccheck.Category) bool {
	for i := range r.Findings {
		if r.Findings[i].Cat == cat {
			return true
		}
	}
	return false
}

func TestTaxonomy(t *testing.T) {
	res := runFixture(t, "taxonomy")
	if len(res.DirectiveErrors) != 0 {
		t.Fatalf("unexpected directive errors: %v", res.DirectiveErrors)
	}
	roots := rootsByName(t, res)

	clean, ok := roots["tax.Clean"]
	if !ok {
		t.Fatal("root tax.Clean not found")
	}
	if !clean.Proven || len(clean.Findings) != 0 {
		t.Fatalf("tax.Clean: proven=%v findings=%v, want proven with none", clean.Proven, clean.Findings)
	}

	want := map[string]alloccheck.Category{
		"tax.UseMake":          alloccheck.CatMake,
		"tax.UseNew":           alloccheck.CatNew,
		"tax.UseAppend":        alloccheck.CatAppend,
		"tax.UseSliceLit":      alloccheck.CatComposite,
		"tax.UseAddrComposite": alloccheck.CatComposite,
		"tax.UseMapInsert":     alloccheck.CatMapInsert,
		"tax.UseConcat":        alloccheck.CatStringConcat,
		"tax.UseConv":          alloccheck.CatStringConv,
		"tax.UseBox":           alloccheck.CatIfaceBox,
		"tax.UseClosure":       alloccheck.CatClosure,
		"tax.UseVariadic":      alloccheck.CatVariadic,
		"tax.UseDeferLoop":     alloccheck.CatDeferLoop,
		"tax.UseChan":          alloccheck.CatChan,
		"tax.UseGo":            alloccheck.CatGo,
		"tax.UseFormat":        alloccheck.CatFormat,
		"tax.UseExtern":        alloccheck.CatExtern,
		"tax.UseDynamicFunc":   alloccheck.CatDynamic,
		"tax.UseDynamicIface":  alloccheck.CatDynamic,
	}
	for name, cat := range want {
		r, ok := roots[name]
		if !ok {
			t.Errorf("root %s not found", name)
			continue
		}
		if r.Proven {
			t.Errorf("%s: proven, want a %s finding", name, cat)
			continue
		}
		if !hasCategory(r, cat) {
			t.Errorf("%s: no %s finding in %v", name, cat, r.Findings)
		}
	}

	if res.RootCount != len(want)+1 {
		t.Errorf("RootCount = %d, want %d", res.RootCount, len(want)+1)
	}
	if res.ProvenCount != 1 {
		t.Errorf("ProvenCount = %d, want 1 (only tax.Clean)", res.ProvenCount)
	}
	if res.Clean() {
		t.Error("Clean() = true with seeded allocation sites")
	}
}

func TestInterprocedural(t *testing.T) {
	res := runFixture(t, "interproc")
	if len(res.DirectiveErrors) != 0 {
		t.Fatalf("unexpected directive errors: %v", res.DirectiveErrors)
	}
	roots := rootsByName(t, res)

	for name, fns := range map[string]int{
		"ip.CleanChain": 3, // CleanChain, hop1, hop2
		"ip.CleanCycle": 3, // CleanCycle, isEven, isOdd
		"ip.CrossClean": 2, // CrossClean, dep.Mul
	} {
		r, ok := roots[name]
		if !ok {
			t.Errorf("root %s not found", name)
			continue
		}
		if !r.Proven {
			t.Errorf("%s: not proven: %v", name, r.Findings)
		}
		if r.Functions != fns {
			t.Errorf("%s: walked %d functions, want %d", name, r.Functions, fns)
		}
	}

	for name, hop := range map[string]string{
		"ip.DirtyChain": "mid",
		"ip.DirtyCycle": "cycA",
		"ip.CrossDirty": "dep.Alloc",
	} {
		r, ok := roots[name]
		if !ok {
			t.Errorf("root %s not found", name)
			continue
		}
		if r.Proven {
			t.Errorf("%s: proven, want an allocation finding", name)
			continue
		}
		if len(r.Findings) != 1 {
			t.Errorf("%s: %d findings, want 1: %v", name, len(r.Findings), r.Findings)
			continue
		}
		f := &r.Findings[0]
		if f.Cat != alloccheck.CatCall {
			t.Errorf("%s: finding category %s, want %s", name, f.Cat, alloccheck.CatCall)
		}
		if !strings.Contains(f.Callee, hop) {
			t.Errorf("%s: callee %q, want it to name %q", name, f.Callee, hop)
		}
		if end := chainEnd(f); end.Cat != alloccheck.CatMake {
			t.Errorf("%s: propagation chain ends in %s, want %s", name, end.Cat, alloccheck.CatMake)
		}
	}

	// The two-hop chain must surface both intermediate calls before the
	// direct make site: DirtyChain -> mid -> bottom -> make.
	dc := roots["ip.DirtyChain"]
	if dc != nil && !dc.Proven && len(dc.Findings) == 1 {
		f := &dc.Findings[0]
		if f.Underlying == nil || f.Underlying.Cat != alloccheck.CatCall ||
			!strings.Contains(f.Underlying.Callee, "bottom") {
			t.Errorf("ip.DirtyChain: want a call-to-bottom hop before the make site, got %+v", f.Underlying)
		}
	}
}

func TestEscapeHatches(t *testing.T) {
	res := runFixture(t, "hatch")
	if !res.Clean() {
		t.Fatalf("hatch fixture not clean: errors=%v roots=%+v", res.DirectiveErrors, res.Roots)
	}
	if res.RootCount != 3 || res.ProvenCount != 3 {
		t.Fatalf("roots=%d proven=%d, want 3/3", res.RootCount, res.ProvenCount)
	}
	if res.HatchesUsed != 3 {
		t.Fatalf("HatchesUsed = %d, want 3 (direct, edge, trailing)", res.HatchesUsed)
	}
	roots := rootsByName(t, res)
	if r := roots["h.HatchedEdge"]; r == nil || r.Hatches != 1 {
		t.Fatalf("h.HatchedEdge: %+v, want exactly 1 hatch applied", r)
	}
}

func TestDirectiveErrors(t *testing.T) {
	res := runFixture(t, "direrr")
	if res.Clean() {
		t.Fatal("direrr fixture reported clean")
	}

	counts := map[string]int{
		"is missing the mandatory reason":          0,
		"misplaced":                                0,
		"suppresses no allocation site":            0,
		"on a bodyless declaration proves nothing": 0,
	}
	for _, e := range res.DirectiveErrors {
		for sub := range counts {
			if strings.Contains(e, sub) {
				counts[sub]++
			}
		}
	}
	if counts["is missing the mandatory reason"] != 1 {
		t.Errorf("reasonless-hatch errors = %d, want 1: %v", counts["is missing the mandatory reason"], res.DirectiveErrors)
	}
	if counts["misplaced"] != 2 {
		t.Errorf("misplaced-directive errors = %d, want 2 (in-body, var doc): %v", counts["misplaced"], res.DirectiveErrors)
	}
	if counts["suppresses no allocation site"] != 1 {
		t.Errorf("dead-hatch errors = %d, want 1: %v", counts["suppresses no allocation site"], res.DirectiveErrors)
	}
	if counts["on a bodyless declaration proves nothing"] != 1 {
		t.Errorf("bodyless-root errors = %d, want 1: %v", counts["on a bodyless declaration proves nothing"], res.DirectiveErrors)
	}

	roots := rootsByName(t, res)
	if r := roots["e.ReasonlessHatch"]; r == nil || r.Proven {
		t.Error("e.ReasonlessHatch: a reasonless hatch must not suppress its site")
	}
	if r := roots["e.DeadHatch"]; r == nil || !r.Proven {
		t.Error("e.DeadHatch: the function itself is allocation-free and must prove")
	}
	if _, ok := roots["e.Bodyless"]; ok {
		t.Error("e.Bodyless: bodyless declarations must not become roots")
	}
}
