// Package alloccheck statically proves zero-allocation hot paths.
//
// For every function annotated //gpower:noalloc it walks the full static
// call graph and proves that no reachable statement can allocate, flagging
// violations by taxonomy (see Category). Calls it cannot resolve —
// interface dispatch, func values, unlisted externals — default to
// may-allocate: the proof is conservative by construction. The
// //gpower:allocs <reason> escape hatch suppresses individually justified
// sites (cold miss paths, warm-up growth) with //lint:ignore discipline:
// reasons are mandatory and dead hatches are errors.
//
// alloccheck is a standalone verification subsystem, not a gpowerlint
// analyzer; it reuses the concurrent single-flight lint.Loader purely as a
// type-checking library. Verdicts are memoized per function with cycle
// tainting (a verdict computed through an in-progress call chain is never
// cached), so output is deterministic and position-ordered regardless of
// which root is proven first. DESIGN.md §13 documents the semantics and
// the known conservatisms.
package alloccheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"gpupower/internal/lint"
)

// funcUnit is one function body the checker can walk.
type funcUnit struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *lint.Package
}

// localInfo is the memoized intra-procedural analysis of one function:
// direct allocation sites (escape hatches already applied), static
// in-module call edges, and the hatches that suppressed direct sites.
type localInfo struct {
	sites    []Site
	calls    []callEdge
	usedDirs []*hatch // distinct hatches that suppressed something here
}

// verdict is the interprocedural result for one function.
type verdict struct {
	proven  bool
	tainted bool // computed through an in-progress cycle: never memoized
	sites   []Site
}

// RootResult is the proof outcome for one annotated root.
type RootResult struct {
	// Func is the fully-qualified function name.
	Func string `json:"func"`
	// Pos is the declaration position.
	Pos token.Position `json:"-"`
	// Proven reports whether the whole reachable call graph is
	// allocation-free (after escape hatches).
	Proven bool `json:"proven"`
	// Findings are the surviving allocation sites, position-ordered.
	Findings []Site `json:"findings"`
	// Functions counts the distinct in-module functions walked from this
	// root (including the root itself).
	Functions int `json:"functions"`
	// Hatches counts the distinct escape hatches applied in this root's
	// call graph.
	Hatches int `json:"hatches"`
}

// Result is one whole-module proof run.
type Result struct {
	// Roots holds every annotated function, position-ordered.
	Roots []RootResult `json:"roots"`
	// DirectiveErrors are malformed or dead annotations; any entry fails
	// the run even when all roots prove clean.
	DirectiveErrors []string `json:"directive_errors"`
	// Summary totals.
	RootCount       int `json:"root_count"`
	ProvenCount     int `json:"proven_count"`
	HatchesUsed     int `json:"hatches_used"`
	FunctionsWalked int `json:"functions_walked"`
}

// Clean reports whether the run proves every root with no directive errors.
func (r *Result) Clean() bool {
	return len(r.DirectiveErrors) == 0 && r.ProvenCount == r.RootCount
}

// Checker proves //gpower:noalloc roots over a loaded module.
type Checker struct {
	pkgs    []*lint.Package
	units   map[*types.Func]*funcUnit
	modPath string

	hatches map[string][]*hatch // file -> hatches, for site suppression
	dirErrs []string

	locals      map[*types.Func]*localInfo
	verdicts    map[*types.Func]*verdict
	inProgress  map[*types.Func]bool
	used        map[*hatch]bool
	edgeDirs    map[*types.Func][]*hatch // call-edge suppressions per caller
	walkedByPos []*funcUnit              // units with computed locals, discovery order
}

// NewChecker loads every package reachable from the loader's root and
// builds the function index. The loader decides whether _test.go files
// participate (Loader.Tests).
func NewChecker(loader *lint.Loader, modPath string) (*Checker, error) {
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, fmt.Errorf("alloccheck: load: %w", err)
	}
	return newChecker(pkgs, modPath), nil
}

func newChecker(pkgs []*lint.Package, modPath string) *Checker {
	c := &Checker{
		pkgs:       pkgs,
		modPath:    modPath,
		units:      make(map[*types.Func]*funcUnit),
		hatches:    make(map[string][]*hatch),
		locals:     make(map[*types.Func]*localInfo),
		verdicts:   make(map[*types.Func]*verdict),
		inProgress: make(map[*types.Func]bool),
		used:       make(map[*hatch]bool),
		edgeDirs:   make(map[*types.Func][]*hatch),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				c.units[fn] = &funcUnit{obj: fn, decl: fd, pkg: pkg}
			}
		}
		ds := parseDirectives(pkg)
		c.dirErrs = append(c.dirErrs, ds.errs...)
		for _, h := range ds.hatches {
			c.hatches[h.pos.Filename] = append(c.hatches[h.pos.Filename], h)
		}
	}
	return c
}

// Check proves every annotated root in the module and reports the outcome.
// The walk order is fixed by source position, memoized verdicts are
// chain-independent, and all output slices are position-sorted, so two runs
// over the same tree produce byte-identical reports.
func (c *Checker) Check() *Result {
	roots := c.findRoots()
	res := &Result{DirectiveErrors: append([]string(nil), c.dirErrs...)}
	for _, u := range roots {
		v := c.prove(u.obj)
		fns, dirs := c.reachable(u.obj)
		rr := RootResult{
			Func:      u.obj.FullName(),
			Pos:       u.pkg.Fset.Position(u.decl.Pos()),
			Proven:    v.proven,
			Findings:  append([]Site(nil), v.sites...),
			Functions: fns,
			Hatches:   dirs,
		}
		res.Roots = append(res.Roots, rr)
	}
	// Dead escape hatches: evaluated inside a walked function but never
	// suppressing anything. Silent dead suppressions rot; fail loudly.
	for _, u := range c.walkedByPos {
		start := u.pkg.Fset.Position(u.decl.Pos())
		end := u.pkg.Fset.Position(u.decl.End())
		for _, h := range c.hatches[start.Filename] {
			if h.pos.Line >= start.Line && h.pos.Line <= end.Line && !c.used[h] {
				res.DirectiveErrors = append(res.DirectiveErrors, fmt.Sprintf(
					"%s:%d:%d: escape hatch suppresses no allocation site (reason: %s)",
					h.pos.Filename, h.pos.Line, h.pos.Column, h.reason))
			}
		}
	}
	sort.Strings(res.DirectiveErrors)
	res.RootCount = len(res.Roots)
	for i := range res.Roots {
		if res.Roots[i].Proven {
			res.ProvenCount++
		}
	}
	res.FunctionsWalked = len(c.locals)
	for _, u := range c.walkedByPos {
		res.HatchesUsed += len(c.distinctDirs(u.obj))
	}
	return res
}

// findRoots returns every //gpower:noalloc function, position-ordered.
func (c *Checker) findRoots() []*funcUnit {
	var roots []*funcUnit
	for _, pkg := range c.pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || !isNoallocRoot(fd) {
					continue
				}
				if fd.Body == nil {
					pos := pkg.Fset.Position(fd.Pos())
					c.dirErrs = append(c.dirErrs, fmt.Sprintf(
						"%s:%d:%d: %s on a bodyless declaration proves nothing",
						pos.Filename, pos.Line, pos.Column, noallocPrefix))
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					roots = append(roots, c.units[fn])
				}
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		pi := roots[i].pkg.Fset.Position(roots[i].decl.Pos())
		pj := roots[j].pkg.Fset.Position(roots[j].decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	return roots
}

// local computes (once) the intra-procedural analysis of fn: raw sites are
// collected, escape hatches applied, and the surviving sites sorted.
func (c *Checker) local(fn *types.Func) *localInfo {
	if li, ok := c.locals[fn]; ok {
		return li
	}
	u := c.units[fn]
	rawSites, calls := collectSites(u.pkg, c.units, c.modPath, u.decl)
	li := &localInfo{}
	seenDir := make(map[*hatch]bool)
	for i := range rawSites {
		if h := c.coveringHatch(rawSites[i].Pos); h != nil {
			c.used[h] = true
			if !seenDir[h] {
				seenDir[h] = true
				li.usedDirs = append(li.usedDirs, h)
			}
			continue
		}
		li.sites = append(li.sites, rawSites[i])
	}
	for i := range calls {
		calls[i].hatch = c.coveringHatch(calls[i].pos)
	}
	li.calls = calls
	sortSites(li.sites)
	c.locals[fn] = li
	c.walkedByPos = append(c.walkedByPos, u)
	return li
}

func (c *Checker) coveringHatch(pos token.Position) *hatch {
	for _, h := range c.hatches[pos.Filename] {
		if h.covers(pos) {
			return h
		}
	}
	return nil
}

// prove computes fn's verdict. Cycles resolve optimistically at the back
// edge — allocation is a may-property, so the least fixed point is sound:
// every direct site of every cycle member is still collected exactly once
// at that member and propagated to the entry point. Verdicts computed
// through an in-progress chain are tainted and never memoized, which makes
// the memo contents independent of which root was proven first.
func (c *Checker) prove(fn *types.Func) verdict {
	if v, ok := c.verdicts[fn]; ok {
		return *v
	}
	if c.inProgress[fn] {
		return verdict{proven: true, tainted: true}
	}
	c.inProgress[fn] = true
	defer delete(c.inProgress, fn)

	li := c.local(fn)
	v := verdict{sites: append([]Site(nil), li.sites...)}
	for _, edge := range li.calls {
		sub := c.prove(edge.fn)
		if sub.tainted {
			v.tainted = true
		}
		if sub.proven {
			continue
		}
		if edge.hatch != nil {
			c.used[edge.hatch] = true
			c.edgeDirs[fn] = append(c.edgeDirs[fn], edge.hatch)
			continue
		}
		site := Site{
			Cat:    CatCall,
			Pos:    edge.pos,
			Callee: edge.name,
			Msg:    fmt.Sprintf("calls %s, which is not proven allocation-free", edge.name),
		}
		if len(sub.sites) > 0 {
			under := sub.sites[0]
			site.Underlying = &under
		}
		v.sites = append(v.sites, site)
	}
	sortSites(v.sites)
	v.proven = len(v.sites) == 0
	if !v.tainted {
		stored := v
		stored.sites = append([]Site(nil), v.sites...)
		c.verdicts[fn] = &stored
	}
	return v
}

// reachable counts the distinct functions and applied escape hatches in
// fn's static call graph.
func (c *Checker) reachable(fn *types.Func) (functions, hatches int) {
	seen := map[*types.Func]bool{fn: true}
	queue := []*types.Func{fn}
	dirs := make(map[*hatch]bool)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, h := range c.distinctDirs(cur) {
			dirs[h] = true
		}
		for _, edge := range c.locals[cur].calls {
			if !seen[edge.fn] {
				seen[edge.fn] = true
				queue = append(queue, edge.fn)
			}
		}
	}
	return len(seen), len(dirs)
}

// distinctDirs returns the distinct hatches applied inside fn (direct-site
// suppressions plus call-edge suppressions).
func (c *Checker) distinctDirs(fn *types.Func) []*hatch {
	li := c.locals[fn]
	if li == nil {
		return nil
	}
	seen := make(map[*hatch]bool)
	var out []*hatch
	for _, h := range li.usedDirs {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	for _, h := range c.edgeDirs[fn] {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}

func sortSites(sites []Site) {
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i].Pos, sites[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return sites[i].Msg < sites[j].Msg
	})
}
