// Package e exercises every directive diagnostic: reasonless hatches, dead
// hatches, misplaced noalloc directives, and bodyless roots.
package e

//gpower:noalloc reasonless hatch below
func ReasonlessHatch(n int) int {
	//gpower:allocs
	s := make([]int, n)
	return len(s)
}

//gpower:noalloc dead hatch: nothing on the next line allocates
func DeadHatch(a, b int) int {
	//gpower:allocs this suppresses nothing
	return a + b
}

func misplacedHost(a int) int {
	x := a * 2
	//gpower:noalloc this is not a doc comment
	return x
}

//gpower:noalloc a var block is not a function
var notAFunction = 42

//gpower:noalloc bodyless declarations prove nothing
func Bodyless(x float64) float64
