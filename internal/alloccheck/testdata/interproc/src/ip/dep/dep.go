// Package dep is the in-module dependency the cross-package tests walk into.
package dep

// Mul is allocation-free.
func Mul(a, b int) int { return a * b }

// Alloc allocates a slice.
func Alloc(n int) []int { return make([]int, n) }
