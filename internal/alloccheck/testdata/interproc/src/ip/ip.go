// Package ip exercises the interprocedural walk: clean and dirty call
// chains, mutual recursion (cycles), and cross-package edges into dep.
package ip

import "ip/dep"

//gpower:noalloc three-hop clean chain
func CleanChain(x int) int {
	return hop1(x)
}

func hop1(x int) int { return hop2(x) + 1 }

func hop2(x int) int { return x * 2 }

//gpower:noalloc seeded: the chain bottoms out in make
func DirtyChain(n int) int {
	return mid(n)
}

func mid(n int) int { return len(bottom(n)) }

func bottom(n int) []int { return make([]int, n) }

//gpower:noalloc mutual recursion with no allocation sites
func CleanCycle(n int) bool {
	return isEven(n)
}

func isEven(n int) bool {
	if n == 0 {
		return true
	}
	return isOdd(n - 1)
}

func isOdd(n int) bool {
	if n == 0 {
		return false
	}
	return isEven(n - 1)
}

//gpower:noalloc seeded: a cycle member allocates
func DirtyCycle(n int) int {
	return cycA(n)
}

func cycA(n int) int {
	if n <= 0 {
		return 0
	}
	return cycB(n - 1)
}

func cycB(n int) int {
	s := make([]int, 1)
	s[0] = n
	return cycA(n-1) + s[0]
}

//gpower:noalloc clean cross-package call
func CrossClean(a, b int) int {
	return dep.Mul(a, b)
}

//gpower:noalloc seeded: the cross-package callee allocates
func CrossDirty(n int) []int {
	return dep.Alloc(n)
}
