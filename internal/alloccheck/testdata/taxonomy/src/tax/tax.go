// Package tax exercises one annotated root per allocation-site category so
// the taxonomy test can pin each Category to the construct that produces it.
package tax

import (
	"fmt"
	"strings"
)

type point struct{ x, y int }

type doer interface{ Do() }

//gpower:noalloc pure integer arithmetic
func Clean(a, b int) int {
	if a > b {
		return a - b
	}
	return a + b
}

//gpower:noalloc seeded: make
func UseMake(n int) []int {
	return make([]int, n)
}

//gpower:noalloc seeded: new
func UseNew() *int {
	return new(int)
}

//gpower:noalloc seeded: append
func UseAppend(xs []int, x int) []int {
	return append(xs, x)
}

//gpower:noalloc seeded: slice literal
func UseSliceLit() int {
	s := []int{1, 2, 3}
	return s[0]
}

//gpower:noalloc seeded: escaping composite
func UseAddrComposite() *point {
	return &point{x: 1, y: 2}
}

//gpower:noalloc seeded: map insert
func UseMapInsert(m map[string]int, k string) {
	m[k] = 1
}

//gpower:noalloc seeded: string concatenation
func UseConcat(a, b string) string {
	return a + b
}

//gpower:noalloc seeded: string conversion
func UseConv(b []byte) string {
	return string(b)
}

//gpower:noalloc seeded: interface boxing
func UseBox(x int) any {
	return x
}

//gpower:noalloc seeded: capturing closure
func UseClosure(n int) func() int {
	return func() int { return n }
}

//gpower:noalloc seeded: variadic call with loose arguments
func UseVariadic() int {
	return sum(1, 2, 3)
}

func sum(xs ...int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

//gpower:noalloc seeded: defer inside a loop
func UseDeferLoop(n int) {
	for i := 0; i < n; i++ {
		defer release()
	}
}

func release() {}

//gpower:noalloc seeded: channel receive
func UseChan(c chan int) int {
	return <-c
}

//gpower:noalloc seeded: go statement
func UseGo() {
	go release()
}

//gpower:noalloc seeded: formatting call
func UseFormat(x int) string {
	return fmt.Sprint(x)
}

//gpower:noalloc seeded: external call off the allowlist
func UseExtern(s string) string {
	return strings.ToUpper(s)
}

//gpower:noalloc seeded: call through a func value
func UseDynamicFunc(f func() int) int {
	return f()
}

//gpower:noalloc seeded: interface method dispatch
func UseDynamicIface(d doer) {
	d.Do()
}
