// Package h exercises the //gpower:allocs escape hatch in its three
// placements: standalone above a flagged line, suppressing an unproven
// callee edge, and trailing on the flagged line itself.
package h

//gpower:noalloc hatched direct site
func HatchedDirect(n int) int {
	//gpower:allocs warm-up only: the buffer is grown once
	buf := make([]int, n)
	return len(buf)
}

//gpower:noalloc hatched call edge into an unproven callee
func HatchedEdge() int {
	//gpower:allocs cold path: init runs once per process
	return coldInit()
}

func coldInit() int {
	s := make([]int, 8)
	return len(s)
}

//gpower:noalloc hatched with a trailing comment
func HatchedTrailing(xs []int, x int) int {
	xs = append(xs, x) //gpower:allocs warm-up only: capacity covers the steady state
	return len(xs)
}
