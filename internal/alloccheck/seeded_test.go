package alloccheck_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpupower/internal/alloccheck"
	"gpupower/internal/lint/linttest"
)

// seededGovernorAppend plants a growing append inside the governor package:
// the classic hot-path regression alloccheck exists to catch.
const seededGovernorAppend = `package governor

//gpower:noalloc seeded: the visited log grows on every decision
func zzSeededScanDecisions(n int) int {
	var visited []int
	for i := 0; i < n; i++ {
		visited = append(visited, i)
	}
	return len(visited)
}
`

// seededCoreSprintf plants an interface-boxing fmt.Sprintf into the core
// package: formatting on a per-prediction path.
const seededCoreSprintf = `package core

import "fmt"

//gpower:noalloc seeded: the label formats the device name on every call
func zzSeededLabel(m *Model) string {
	return fmt.Sprintf("%s#%d", m.DeviceName, m.Iterations)
}
`

// TestSeededMutations copies the real module into a scratch tree, verifies
// the copy proves clean, plants two allocating mutations into annotated
// functions, and requires alloccheck to report exactly those two — with no
// leakage into the untouched files.
func TestSeededMutations(t *testing.T) {
	root, modPath := linttest.ModuleRoot(t)
	dst := t.TempDir()
	linttest.CopyModuleGoFiles(t, root, dst)

	base := checkModule(t, dst, modPath)
	if !base.Clean() {
		t.Fatalf("pristine copy not clean: errors=%v proven=%d/%d", base.DirectiveErrors, base.ProvenCount, base.RootCount)
	}

	plants := map[string]string{
		filepath.Join(dst, "internal", "governor", "zzseeded.go"): seededGovernorAppend,
		filepath.Join(dst, "internal", "core", "zzseeded.go"):     seededCoreSprintf,
	}
	for path, src := range plants {
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	res := checkModule(t, dst, modPath)
	if res.Clean() {
		t.Fatal("seeded mutations went undetected")
	}
	if len(res.DirectiveErrors) != 0 {
		t.Fatalf("unexpected directive errors: %v", res.DirectiveErrors)
	}
	if res.RootCount != base.RootCount+2 {
		t.Fatalf("RootCount = %d, want %d (baseline %d + 2 plants)", res.RootCount, base.RootCount+2, base.RootCount)
	}
	if res.ProvenCount != base.RootCount {
		t.Fatalf("ProvenCount = %d, want %d (every pre-existing root still proven)", res.ProvenCount, base.RootCount)
	}

	wantCat := map[string]alloccheck.Category{
		"gpupower/internal/governor.zzSeededScanDecisions": alloccheck.CatAppend,
		"gpupower/internal/core.zzSeededLabel":             alloccheck.CatFormat,
	}
	caught := 0
	for i := range res.Roots {
		r := &res.Roots[i]
		cat, planted := wantCat[r.Func]
		if !planted {
			if !r.Proven {
				t.Errorf("leakage: untouched root %s became unproven: %v", r.Func, r.Findings)
			}
			continue
		}
		caught++
		if r.Proven {
			t.Errorf("plant %s not reported", r.Func)
			continue
		}
		if !hasCategory(r, cat) {
			t.Errorf("plant %s: no %s finding in %v", r.Func, cat, r.Findings)
		}
		for j := range r.Findings {
			if !strings.Contains(r.Findings[j].Pos.Filename, "zzseeded") {
				t.Errorf("plant %s: finding outside the seeded file: %s", r.Func, r.Findings[j].Pos.Filename)
			}
		}
	}
	if caught != 2 {
		t.Fatalf("found %d planted roots, want 2", caught)
	}
}
