// Package microbench builds the paper's 83-microbenchmark training suite
// (Section IV): collections that stress the Int, SP, DP and SF units
// (Fig. 3a/3b), shared memory (Fig. 3c), the L2 cache (Fig. 3d), DRAM
// (Fig. 3e), mixed-component kernels, and one Idle pseudo-benchmark —
// 12 + 11 + 12 + 8 + 10 + 10 + 12 + 7 + 1 = 83 kernels.
//
// Each microbenchmark is a kernel descriptor parameterized the way the
// paper's CUDA sources are: the loop iteration count N sets the arithmetic
// intensity (arithmetic instructions per global load/store pair), so
// sweeping N walks the kernel from DRAM-bound to compute-bound, producing
// the utilization gradients of the paper's Fig. 5A.
package microbench

import (
	"fmt"

	"gpupower/internal/hw"
	"gpupower/internal/kernels"
)

// Collection labels one group of microbenchmarks, as in Fig. 5.
type Collection string

// The nine collections of the suite.
const (
	CollInt    Collection = "INT"
	CollSP     Collection = "SP"
	CollDP     Collection = "DP"
	CollSF     Collection = "SF"
	CollL2     Collection = "L2"
	CollShared Collection = "Shared"
	CollDRAM   Collection = "DRAM"
	CollMix    Collection = "MIX"
	CollIdle   Collection = "Idle"
)

// Collections lists the groups in the paper's Fig. 5 presentation order.
var Collections = []Collection{
	CollInt, CollSP, CollDP, CollSF, CollL2, CollShared, CollDRAM, CollMix, CollIdle,
}

// Benchmark is one microbenchmark: a kernel plus its collection label.
type Benchmark struct {
	Collection Collection
	Kernel     *kernels.KernelSpec
}

// Suite generation constants. Thread count and per-iteration operation count
// mirror the paper's kernels (4 independent FMA chains per iteration,
// Fig. 3a/4); the repeat factor stretches a single launch into the
// millisecond range so the profiler's ≥1 s rule needs only modest repetition.
const (
	threads     = 1 << 23 // 8 Mi threads per launch
	opsPerIter  = 4       // r0..r3 dependency chains per loop iteration
	launchScale = 8       // outer repetitions folded into one launch
)

func warps() float64 { return float64(threads) / 32 }

// arithmetic builds the Fig. 3a kernel for a compute unit with loop count n:
// one global load and one store per thread around n iterations of
// opsPerIter fused multiply-adds.
func arithmetic(unit hw.Component, elemBytes float64, n int, name string) *kernels.KernelSpec {
	w := warps() * float64(launchScale)
	bytes := float64(threads) * elemBytes * float64(launchScale)
	k := &kernels.KernelSpec{
		Name: name,
		WarpInstrs: map[hw.Component]float64{
			unit: w * opsPerIter * float64(n),
			// Loop bookkeeping (increment + compare) issues integer work.
			hw.Int: w * 2 * float64(n),
		},
		// The streaming load/store traffic passes through L2 to DRAM.
		L2ReadBytes:     bytes,
		L2WriteBytes:    bytes,
		DRAMReadBytes:   bytes,
		DRAMWriteBytes:  bytes,
		FixedCycles:     5e5,
		StallSeconds:    1.5e-4,
		IssueEfficiency: 0.92,
	}
	if unit == hw.Int {
		// Collapse the bookkeeping into the measured unit.
		k.WarpInstrs = map[hw.Component]float64{
			hw.Int: w * (opsPerIter + 2) * float64(n),
		}
	}
	return k
}

// intSuite: 12 arithmetic-intensity levels on the integer units.
func intSuite() []Benchmark {
	ns := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}
	out := make([]Benchmark, 0, len(ns))
	for _, n := range ns {
		k := arithmetic(hw.Int, 4, n, fmt.Sprintf("ub_int_n%d", n))
		out = append(out, Benchmark{CollInt, k})
	}
	return out
}

// spSuite: 11 levels on the single-precision units.
func spSuite() []Benchmark {
	ns := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	out := make([]Benchmark, 0, len(ns))
	for _, n := range ns {
		k := arithmetic(hw.SP, 4, n, fmt.Sprintf("ub_sp_n%d", n))
		out = append(out, Benchmark{CollSP, k})
	}
	return out
}

// dpSuite: 12 levels on the double-precision units (8-byte elements).
func dpSuite() []Benchmark {
	ns := []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128}
	out := make([]Benchmark, 0, len(ns))
	for _, n := range ns {
		k := arithmetic(hw.DP, 8, n, fmt.Sprintf("ub_dp_n%d", n))
		out = append(out, Benchmark{CollDP, k})
	}
	return out
}

// sfSuite: 8 levels on the special-function units (Fig. 3b: log/cos/sin
// chains; each transcendental expands to several SFU warp instructions).
func sfSuite() []Benchmark {
	ns := []int{1, 2, 4, 8, 16, 32, 64, 128}
	out := make([]Benchmark, 0, len(ns))
	for _, n := range ns {
		k := arithmetic(hw.SF, 4, n, fmt.Sprintf("ub_sf_n%d", n))
		// A transcendental costs ~4 SFU slots; keep op count but note the
		// SF units are scarce (32/SM), so these saturate quickly.
		out = append(out, Benchmark{CollSF, k})
	}
	return out
}

// l2Suite: 10 kernels whose working set lives in the L2 cache (Fig. 3d,
// based on access-pattern exploration à la cache-aware roofline): heavy L2
// traffic, negligible DRAM traffic, variable trailing compute.
func l2Suite() []Benchmark {
	type v struct {
		iters  int
		intOps int
	}
	vs := []v{
		{64, 0}, {96, 0}, {128, 0}, {192, 0}, {256, 0},
		{64, 64}, {96, 96}, {128, 192}, {192, 384}, {256, 768},
	}
	out := make([]Benchmark, 0, len(vs))
	for i, p := range vs {
		w := warps() * float64(launchScale)
		bytes := float64(threads) * 4 * float64(p.iters) * float64(launchScale)
		k := &kernels.KernelSpec{
			Name: fmt.Sprintf("ub_l2_v%d", i+1),
			WarpInstrs: map[hw.Component]float64{
				hw.Int: w * float64(2*p.iters+p.intOps),
			},
			L2ReadBytes:  bytes,
			L2WriteBytes: bytes,
			// Cold misses only.
			DRAMReadBytes:   bytes / 64,
			DRAMWriteBytes:  bytes / 64,
			FixedCycles:     5e5,
			StallSeconds:    1.5e-4,
			IssueEfficiency: 0.88,
		}
		out = append(out, Benchmark{CollL2, k})
	}
	return out
}

// sharedSuite: 10 kernels bouncing data through shared memory (Fig. 3c:
// conflict-free load/store pairs per iteration).
func sharedSuite() []Benchmark {
	type v struct {
		iters  int
		intOps int
	}
	vs := []v{
		{128, 0}, {192, 0}, {256, 0}, {384, 0}, {512, 0},
		{128, 128}, {192, 256}, {256, 512}, {384, 1024}, {512, 2048},
	}
	out := make([]Benchmark, 0, len(vs))
	for i, p := range vs {
		w := warps() * float64(launchScale)
		bytes := float64(threads) * 4 * float64(p.iters) * float64(launchScale)
		k := &kernels.KernelSpec{
			Name: fmt.Sprintf("ub_shared_v%d", i+1),
			WarpInstrs: map[hw.Component]float64{
				hw.Int: w * float64(2*p.iters+p.intOps),
			},
			SharedLoadBytes:  bytes,
			SharedStoreBytes: bytes,
			// The initial fill and final drain touch global memory lightly.
			L2ReadBytes:     float64(threads) * 4 * float64(launchScale),
			L2WriteBytes:    float64(threads) * 4 * float64(launchScale),
			DRAMReadBytes:   float64(threads) * 4 * float64(launchScale),
			DRAMWriteBytes:  float64(threads) * 4 * float64(launchScale),
			FixedCycles:     5e5,
			StallSeconds:    1.5e-4,
			IssueEfficiency: 0.90,
		}
		out = append(out, Benchmark{CollShared, k})
	}
	return out
}

// dramSuite: 12 streaming kernels with very low arithmetic intensity
// (Fig. 3e: 2 FMAs per loop, small N), sweeping the read/write mix.
func dramSuite() []Benchmark {
	type v struct {
		n         int
		readFrac  float64
		issueBand float64
	}
	vs := []v{
		{1, 0.5, 0.95}, {2, 0.5, 0.95}, {3, 0.5, 0.92}, {4, 0.5, 0.92},
		{1, 0.75, 0.90}, {2, 0.75, 0.90}, {1, 1.0, 0.88}, {2, 1.0, 0.88},
		{6, 0.5, 0.85}, {8, 0.5, 0.85}, {1, 0.25, 0.80}, {2, 0.25, 0.75},
	}
	out := make([]Benchmark, 0, len(vs))
	for i, p := range vs {
		w := warps() * float64(launchScale)
		total := float64(threads) * 4 * 4 * float64(launchScale)
		k := &kernels.KernelSpec{
			Name: fmt.Sprintf("ub_dram_v%d", i+1),
			WarpInstrs: map[hw.Component]float64{
				hw.SP:  w * 2 * float64(p.n),
				hw.Int: w * 2 * float64(p.n),
			},
			L2ReadBytes:     total * p.readFrac,
			L2WriteBytes:    total * (1 - p.readFrac),
			DRAMReadBytes:   total * p.readFrac,
			DRAMWriteBytes:  total * (1 - p.readFrac),
			FixedCycles:     5e5,
			StallSeconds:    1.5e-4,
			IssueEfficiency: p.issueBand,
		}
		out = append(out, Benchmark{CollDRAM, k})
	}
	return out
}

// mixSuite: 7 kernels exercising several components at once, decorrelating
// the regression design.
func mixSuite() []Benchmark {
	w := warps() * float64(launchScale)
	g := float64(threads) * 4 * float64(launchScale)
	mk := func(name string, f func(k *kernels.KernelSpec)) Benchmark {
		k := &kernels.KernelSpec{
			Name:            name,
			WarpInstrs:      map[hw.Component]float64{},
			FixedCycles:     5e5,
			StallSeconds:    1.5e-4,
			IssueEfficiency: 0.90,
		}
		f(k)
		return Benchmark{CollMix, k}
	}
	return []Benchmark{
		mk("ub_mix_sp_dram", func(k *kernels.KernelSpec) {
			k.WarpInstrs[hw.SP] = w * 192
			k.WarpInstrs[hw.Int] = w * 64
			k.L2ReadBytes, k.DRAMReadBytes = g*3, g*3
			k.L2WriteBytes, k.DRAMWriteBytes = g, g
		}),
		mk("ub_mix_int_shared", func(k *kernels.KernelSpec) {
			k.WarpInstrs[hw.Int] = w * 256
			k.SharedLoadBytes, k.SharedStoreBytes = g*24, g*24
			k.L2ReadBytes, k.DRAMReadBytes = g, g
		}),
		mk("ub_mix_sp_sf_l2", func(k *kernels.KernelSpec) {
			k.WarpInstrs[hw.SP] = w * 128
			k.WarpInstrs[hw.SF] = w * 48
			k.WarpInstrs[hw.Int] = w * 32
			k.L2ReadBytes, k.L2WriteBytes = g*32, g*16
			k.DRAMReadBytes = g / 2
		}),
		mk("ub_mix_dp_dram", func(k *kernels.KernelSpec) {
			k.WarpInstrs[hw.DP] = w * 12
			k.WarpInstrs[hw.Int] = w * 16
			k.L2ReadBytes, k.DRAMReadBytes = g*2, g*2
			k.L2WriteBytes, k.DRAMWriteBytes = g, g
		}),
		mk("ub_mix_all_compute", func(k *kernels.KernelSpec) {
			k.WarpInstrs[hw.SP] = w * 160
			k.WarpInstrs[hw.Int] = w * 160
			k.WarpInstrs[hw.SF] = w * 24
			k.WarpInstrs[hw.DP] = w * 4
			k.L2ReadBytes, k.DRAMReadBytes = g, g
		}),
		mk("ub_mix_shared_dram", func(k *kernels.KernelSpec) {
			k.WarpInstrs[hw.Int] = w * 64
			k.SharedLoadBytes, k.SharedStoreBytes = g*16, g*16
			k.L2ReadBytes, k.DRAMReadBytes = g*3, g*3
			k.L2WriteBytes, k.DRAMWriteBytes = g*2, g*2
		}),
		mk("ub_mix_hot", func(k *kernels.KernelSpec) {
			// The highest-power kernel of the suite: every component busy
			// (the paper's peak dynamic share, ~49%, lands on a Mix kernel).
			k.WarpInstrs[hw.SP] = w * 224
			k.WarpInstrs[hw.Int] = w * 128
			k.WarpInstrs[hw.SF] = w * 32
			k.SharedLoadBytes, k.SharedStoreBytes = g*12, g*12
			k.L2ReadBytes, k.L2WriteBytes = g*4, g*2
			k.DRAMReadBytes, k.DRAMWriteBytes = g*4, g*2
		}),
	}
}

// idleBenchmark is the suite's "GPU awake, no kernel" entry.
func idleBenchmark() Benchmark {
	return Benchmark{CollIdle, &kernels.KernelSpec{
		Name:            "ub_idle",
		WarpInstrs:      map[hw.Component]float64{},
		FixedCycles:     1e6,
		IssueEfficiency: 1,
	}}
}

// Suite returns the full 83-microbenchmark training suite.
func Suite() []Benchmark {
	var out []Benchmark
	out = append(out, intSuite()...)
	out = append(out, spSuite()...)
	out = append(out, dpSuite()...)
	out = append(out, sfSuite()...)
	out = append(out, l2Suite()...)
	out = append(out, sharedSuite()...)
	out = append(out, dramSuite()...)
	out = append(out, mixSuite()...)
	out = append(out, idleBenchmark())
	return out
}

// SuiteSize is the expected benchmark count (83, per the paper).
const SuiteSize = 83

// ByCollection groups the suite by collection, preserving order.
func ByCollection(suite []Benchmark) map[Collection][]Benchmark {
	out := make(map[Collection][]Benchmark)
	for _, b := range suite {
		out[b.Collection] = append(out[b.Collection], b)
	}
	return out
}
