package microbench

import (
	"fmt"
	"strings"
)

// The paper releases the microbenchmark suite's CUDA sources (Fig. 3) and
// shows the PTX the SP variant compiles to (Fig. 4). The templates below
// reproduce those listings; Benchmark.Source renders the concrete code for
// one suite entry, so the released artifact documents exactly what each
// descriptor models.

// arithmeticTemplate is Fig. 3a: the Int/SP/DP kernel with four dependent
// multiply-add chains per iteration.
const arithmeticTemplate = `__global__ void ub_%s(const %s *A, %s *B) {
    int threadId = blockIdx.x * blockDim.x + threadIdx.x;
    %s r0, r1, r2, r3;
    r0 = A[threadId];
    r1 = r2 = r3 = r0;
    for (int i = 0; i < %d; i++) {   // N controls the arithmetic intensity
        r0 = r0 * r0 + r1;
        r1 = r1 * r1 + r2;
        r2 = r2 * r2 + r3;
        r3 = r3 * r3 + r0;
    }
    B[threadId] = r0;
}`

// sfTemplate is Fig. 3b: transcendental chains on the special-function units.
const sfTemplate = `__global__ void ub_sf(const float *A, float *B) {
    int threadId = blockIdx.x * blockDim.x + threadIdx.x;
    float r0, r1, r2, r3;
    r0 = A[threadId];
    r1 = r2 = r3 = r0;
    for (int i = 0; i < %d; i++) {
        r0 = logf(r1);
        r1 = cosf(r2);
        r2 = logf(r3);
        r3 = sinf(r0);
    }
    B[threadId] = r0;
}`

// sharedTemplate is Fig. 3c: conflict-free shared-memory load/store pairs.
const sharedTemplate = `__global__ void ub_shared(float *cdout) {
    __shared__ float shared[THREADS];
    int threadId = threadIdx.x;
    float r0;
    for (int i = 0; i < %d; i++) {   // COMP_ITERATIONS
        r0 = shared[threadId];
        shared[THREADS - threadId - 1] = r0;
    }
    cdout[threadId] = r0;
}`

// l2Template is Fig. 3d: streaming accesses over a working set sized to the
// L2 cache (access patterns after the cache-aware roofline methodology).
const l2Template = `__global__ void ub_l2(const float *cdin, float *cdout) {
    int threadId = blockIdx.x * blockDim.x + threadIdx.x;
    float r0;
    for (int i = 0; i < %d; i++) {   // COMP_ITERATIONS; working set fits in L2
        r0 = cdin[threadId];
        cdout[threadId] = r0;
    }
    cdout[threadId] = r0;
}`

// dramTemplate is Fig. 3e: the arithmetic kernel at very low intensity, so
// the streaming traffic dominates.
const dramTemplate = `__global__ void ub_dram(const %s *A, %s *B) {
    int threadId = blockIdx.x * blockDim.x + threadIdx.x;
    %s r0, r1;
    r0 = A[threadId];
    r1 = r0;
    for (int i = 0; i < %d; i++) {   // small N: DRAM-bound
        r0 = r0 * r0 + r1;
        r1 = r1 * r1 + r0;
    }
    B[threadId] = r0;
}`

// SPPTXListing is the paper's Fig. 4: the PTX of the single-precision
// arithmetic kernel, with the loop unrolled 32 times.
const SPPTXListing = `ld.global.f32  %f1, [%rd1];
mov.f32  %f2, %f1;
mov.f32  %f3, %f1;
mov.f32  %f4, %f1;
BA1:                                  // loop unrolled 32 times
  fma.rn.f32  %f5, %f1, %f1, %f2;
  fma.rn.f32  %f6, %f2, %f2, %f3;
  fma.rn.f32  %f7, %f3, %f3, %f4;
  fma.rn.f32  %f8, %f4, %f4, %f1;
  ...
  add.s32  %r5, %r5, 32;              // check if achieved N iterations
  setp.lt.s32 %p1, %r5, N;
  bra  BA1;                           // if not, jump back to BA1
st.global.f32  [%rd1], %f5;`

// dtype returns the CUDA element type of a collection's DATA_TYPE macro.
func dtype(c Collection) string {
	switch c {
	case CollInt:
		return "int"
	case CollDP:
		return "double"
	default:
		return "float"
	}
}

// iterOf extracts the loop-count parameter from a generated benchmark name
// (ub_<coll>_n<N> or ub_<coll>_v<K>).
func iterOf(name string) int {
	idx := strings.LastIndexAny(name, "nv")
	if idx < 0 || idx+1 >= len(name) {
		return 0
	}
	var n int
	fmt.Sscanf(name[idx+1:], "%d", &n)
	return n
}

// Source renders the CUDA listing the benchmark models (paper Fig. 3).
// Mix benchmarks interleave the arithmetic and memory bodies; Idle has no
// kernel at all.
func (b Benchmark) Source() string {
	n := iterOf(b.Kernel.Name)
	switch b.Collection {
	case CollInt, CollSP, CollDP:
		t := dtype(b.Collection)
		return fmt.Sprintf(arithmeticTemplate, strings.ToLower(string(b.Collection)), t, t, t, n)
	case CollSF:
		return fmt.Sprintf(sfTemplate, n)
	case CollShared:
		return fmt.Sprintf(sharedTemplate, n)
	case CollL2:
		return fmt.Sprintf(l2Template, n)
	case CollDRAM:
		return fmt.Sprintf(dramTemplate, "float", "float", "float", n)
	case CollMix:
		return "// " + b.Kernel.Name + ": interleaves the Fig. 3 bodies above\n" +
			"// (arithmetic chains + shared/L2/DRAM streaming) in one kernel."
	case CollIdle:
		return "// ub_idle: the GPU is awake with no kernel executing."
	default:
		return ""
	}
}

// RenderSources produces the full suite listing (one source per benchmark),
// the release artifact the paper points to.
func RenderSources() string {
	var sb strings.Builder
	sb.WriteString("Microbenchmark suite sources (paper Fig. 3; PTX per Fig. 4)\n\n")
	for _, b := range Suite() {
		fmt.Fprintf(&sb, "// ---- %s (%s collection) ----\n%s\n\n", b.Kernel.Name, b.Collection, b.Source())
	}
	sb.WriteString("// ---- PTX of the SP variant (Fig. 4) ----\n")
	sb.WriteString(SPPTXListing)
	sb.WriteString("\n")
	return sb.String()
}
