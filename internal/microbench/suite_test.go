package microbench

import (
	"strings"
	"testing"

	"gpupower/internal/hw"
	"gpupower/internal/silicon"
)

func TestSuiteSize(t *testing.T) {
	suite := Suite()
	if len(suite) != SuiteSize || len(suite) != 83 {
		t.Fatalf("suite size = %d, want 83", len(suite))
	}
}

// TestCollectionCounts checks the paper's Fig. 5 group sizes:
// INT×12, SP×11, DP×12, SF×8, L2×10, Shared×10, DRAM×12, MIX×7, Idle×1.
func TestCollectionCounts(t *testing.T) {
	want := map[Collection]int{
		CollInt: 12, CollSP: 11, CollDP: 12, CollSF: 8,
		CollL2: 10, CollShared: 10, CollDRAM: 12, CollMix: 7, CollIdle: 1,
	}
	got := map[Collection]int{}
	for _, b := range Suite() {
		got[b.Collection]++
	}
	for coll, n := range want {
		if got[coll] != n {
			t.Errorf("%s: %d benchmarks, want %d", coll, got[coll], n)
		}
	}
}

func TestAllKernelsValid(t *testing.T) {
	for _, b := range Suite() {
		if err := b.Kernel.Validate(); err != nil {
			t.Errorf("%s: %v", b.Kernel.Name, err)
		}
	}
}

func TestUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Suite() {
		if seen[b.Kernel.Name] {
			t.Errorf("duplicate benchmark name %q", b.Kernel.Name)
		}
		seen[b.Kernel.Name] = true
	}
}

func TestByCollection(t *testing.T) {
	groups := ByCollection(Suite())
	if len(groups) != len(Collections) {
		t.Fatalf("group count = %d, want %d", len(groups), len(Collections))
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != SuiteSize {
		t.Fatalf("grouped total = %d", total)
	}
}

// TestArithmeticIntensityGradient reproduces the Fig. 5A property: within a
// compute collection, increasing N raises the unit's utilization and lowers
// the DRAM utilization.
func TestArithmeticIntensityGradient(t *testing.T) {
	dev := hw.GTXTitanX()
	cfg := dev.DefaultConfig()
	for _, tc := range []struct {
		coll Collection
		unit hw.Component
	}{
		{CollInt, hw.Int}, {CollSP, hw.SP}, {CollDP, hw.DP}, {CollSF, hw.SF},
	} {
		group := ByCollection(Suite())[tc.coll]
		var prevUnit, prevDRAM float64
		prevDRAM = 2
		for i, b := range group {
			e, err := silicon.Simulate(dev, b.Kernel, cfg)
			if err != nil {
				t.Fatal(err)
			}
			u := e.Utilization[tc.unit]
			d := e.Utilization[hw.DRAM]
			if i > 0 {
				if u < prevUnit-1e-9 {
					t.Errorf("%s[%d] (%s): unit utilization decreased (%.3f -> %.3f)",
						tc.coll, i, b.Kernel.Name, prevUnit, u)
				}
				if d > prevDRAM+1e-9 {
					t.Errorf("%s[%d] (%s): DRAM utilization increased (%.3f -> %.3f)",
						tc.coll, i, b.Kernel.Name, prevDRAM, d)
				}
			}
			prevUnit, prevDRAM = u, d
		}
		// The gradient must span a meaningful range.
		first, _ := silicon.Simulate(dev, group[0].Kernel, cfg)
		last, _ := silicon.Simulate(dev, group[len(group)-1].Kernel, cfg)
		if last.Utilization[tc.unit]-first.Utilization[tc.unit] < 0.3 {
			t.Errorf("%s: unit utilization range too narrow (%.2f -> %.2f)",
				tc.coll, first.Utilization[tc.unit], last.Utilization[tc.unit])
		}
	}
}

// TestCollectionsStressTheirComponent: every collection's most intense
// variant is bound by the component it claims to stress.
func TestCollectionsStressTheirComponent(t *testing.T) {
	dev := hw.GTXTitanX()
	cfg := dev.DefaultConfig()
	targets := map[Collection]hw.Component{
		CollInt: hw.Int, CollSP: hw.SP, CollDP: hw.DP, CollSF: hw.SF,
		CollL2: hw.L2, CollShared: hw.Shared,
	}
	groups := ByCollection(Suite())
	for coll, target := range targets {
		// Find the variant with the highest target utilization; it must be
		// bound by the component the collection claims to stress.
		var bestExec *silicon.Execution
		for _, b := range groups[coll] {
			e, err := silicon.Simulate(dev, b.Kernel, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if bestExec == nil || e.Utilization[target] > bestExec.Utilization[target] {
				bestExec = e
			}
		}
		bound := target
		for _, c := range hw.Components {
			if bestExec.Utilization[c] > bestExec.Utilization[bound] {
				bound = c
			}
		}
		if bound != target {
			t.Errorf("%s: most intense variant bound by %s, want %s (U=%v)",
				coll, bound, target, bestExec.Utilization)
		}
	}
	// The DRAM collection's first (lowest-intensity) variant is DRAM-bound.
	e, err := silicon.Simulate(dev, groups[CollDRAM][0].Kernel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range hw.Components {
		if c != hw.DRAM && e.Utilization[c] > e.Utilization[hw.DRAM] {
			t.Errorf("DRAM[0] bound by %s (U=%v)", c, e.Utilization)
		}
	}
}

// TestIdleBenchmarkDoesNothing: the Idle entry must have zero utilization.
func TestIdleBenchmarkDoesNothing(t *testing.T) {
	dev := hw.GTXTitanX()
	groups := ByCollection(Suite())
	idle := groups[CollIdle][0]
	e, err := silicon.Simulate(dev, idle.Kernel, dev.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for c, u := range e.Utilization {
		if u != 0 {
			t.Errorf("idle benchmark has U(%s) = %g", c, u)
		}
	}
}

// TestSuiteRunsEverywhere: every benchmark simulates without error at the
// extreme configurations of every device.
func TestSuiteRunsEverywhere(t *testing.T) {
	for _, dev := range hw.AllDevices() {
		extremes := []hw.Config{
			{CoreMHz: dev.CoreFreqs[0], MemMHz: dev.MemFreqs[0]},
			{CoreMHz: dev.CoreFreqs[len(dev.CoreFreqs)-1], MemMHz: dev.MemFreqs[len(dev.MemFreqs)-1]},
		}
		for _, b := range Suite() {
			for _, cfg := range extremes {
				if _, err := silicon.Simulate(dev, b.Kernel, cfg); err != nil {
					t.Fatalf("%s on %s at %v: %v", b.Kernel.Name, dev.Name, cfg, err)
				}
			}
		}
	}
}

func TestSourcesRender(t *testing.T) {
	for _, b := range Suite() {
		src := b.Source()
		if src == "" {
			t.Fatalf("%s: empty source", b.Kernel.Name)
		}
		switch b.Collection {
		case CollInt:
			if !strings.Contains(src, "int r0, r1, r2, r3") {
				t.Errorf("%s: wrong DATA_TYPE in source", b.Kernel.Name)
			}
		case CollDP:
			if !strings.Contains(src, "double r0") {
				t.Errorf("%s: wrong DATA_TYPE in source", b.Kernel.Name)
			}
		case CollSF:
			if !strings.Contains(src, "logf") || !strings.Contains(src, "cosf") {
				t.Errorf("%s: SF source missing transcendentals", b.Kernel.Name)
			}
		case CollShared:
			if !strings.Contains(src, "__shared__") {
				t.Errorf("%s: shared source missing __shared__", b.Kernel.Name)
			}
		}
	}
	full := RenderSources()
	for _, frag := range []string{"fma.rn.f32", "ub_idle", "__shared__", "BA1:"} {
		if !strings.Contains(full, frag) {
			t.Errorf("rendered sources missing %q", frag)
		}
	}
}

func TestIterOfParsesLoopCounts(t *testing.T) {
	cases := map[string]int{
		"ub_int_n2048":  2048,
		"ub_sp_n1":      1,
		"ub_l2_v7":      7,
		"ub_shared_v10": 10,
	}
	for name, want := range cases {
		if got := iterOf(name); got != want {
			t.Errorf("iterOf(%q) = %d, want %d", name, got, want)
		}
	}
}
