package profiler

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"gpupower/internal/backend"
	"gpupower/internal/backend/simbk"
	"gpupower/internal/cupti"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
)

func newProfiler(t *testing.T, name string) (*Profiler, *simbk.Backend) {
	t.Helper()
	b, err := simbk.Open(name, 42)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(b)
	if err != nil {
		t.Fatal(err)
	}
	return p, b
}

func kern(name string, spWork float64) *kernels.KernelSpec {
	return &kernels.KernelSpec{
		Name:            name,
		WarpInstrs:      map[hw.Component]float64{hw.SP: spWork, hw.Int: spWork / 4},
		L2ReadBytes:     1e8,
		DRAMReadBytes:   1e8,
		FixedCycles:     1e5,
		IssueEfficiency: 0.9,
	}
}

func TestDefaults(t *testing.T) {
	p, _ := newProfiler(t, "GTX Titan X")
	if p.MinWall != time.Second {
		t.Fatalf("MinWall = %v, want 1s (paper methodology)", p.MinWall)
	}
	if p.Repeats != 10 {
		t.Fatalf("Repeats = %d, want 10 (paper methodology)", p.Repeats)
	}
}

func TestNewRejectsNilBackend(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil backend accepted")
	}
}

func TestMeasureKernelPowerAccuracy(t *testing.T) {
	ctx := context.Background()
	p, b := newProfiler(t, "GTX Titan X")
	cfg := hw.Config{CoreMHz: 975, MemMHz: 3505}
	pw, _, err := p.MeasureKernelPower(ctx, kern("k", 5e9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth from the simulator (a real device would not expose it).
	run, err := b.Sim().Execute(kern("k", 5e9))
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(pw-run.TruePower) / run.TruePower; rel > 0.02 {
		t.Fatalf("measured %g vs true %g (%.1f%%)", pw, run.TruePower, 100*rel)
	}
}

func TestMeasureKernelPowerInvalidRepeats(t *testing.T) {
	p, _ := newProfiler(t, "GTX Titan X")
	p.Repeats = 0
	if _, _, err := p.MeasureKernelPower(context.Background(), kern("k", 1e9), p.HW().DefaultConfig()); err == nil {
		t.Fatal("Repeats=0 accepted")
	}
}

func TestMeasureKernelPowerCancellation(t *testing.T) {
	p, _ := newProfiler(t, "GTX Titan X")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := p.MeasureKernelPower(ctx, kern("k", 1e9), p.HW().DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestMeasureAppPowerWeighting(t *testing.T) {
	// A two-kernel app's power is the time-weighted mean of its kernels'.
	ctx := context.Background()
	p, _ := newProfiler(t, "GTX Titan X")
	cfg := p.HW().DefaultConfig()
	k1 := kern("light", 1e9)
	k2 := kern("heavy", 4e10)
	app := &kernels.App{Name: "two", Kernels: []*kernels.KernelSpec{k1, k2}}

	p1, r1, err := p.MeasureKernelPower(ctx, k1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, r2, err := p.MeasureKernelPower(ctx, k2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := (p1*r1.Seconds + p2*r2.Seconds) / (r1.Seconds + r2.Seconds)
	got, err := p.MeasureAppPower(ctx, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("weighted power %g, want ~%g", got, want)
	}
	// The weighted mean must sit strictly between the two kernel powers
	// (they differ on this pair), closer to the long-running kernel.
	lo, hi := math.Min(p1, p2), math.Max(p1, p2)
	if got < lo || got > hi {
		t.Fatalf("weighted power %g outside [%g, %g]", got, lo, hi)
	}
}

func TestMeasureAppPowerRejectsInvalid(t *testing.T) {
	p, _ := newProfiler(t, "GTX Titan X")
	if _, err := p.MeasureAppPower(context.Background(), &kernels.App{Name: "empty"}, p.HW().DefaultConfig()); err == nil {
		t.Fatal("empty app accepted")
	}
}

func TestProfileAppCollectsAllMetrics(t *testing.T) {
	p, _ := newProfiler(t, "GTX Titan X")
	ref := p.HW().DefaultConfig()
	app := kernels.SingleKernelApp(kern("k", 5e9))
	prof, err := p.ProfileApp(context.Background(), app, ref)
	if err != nil {
		t.Fatal(err)
	}
	if prof.RefConfig != ref || len(prof.Kernels) != 1 {
		t.Fatal("profile shape wrong")
	}
	for _, m := range cupti.AllMetrics {
		if _, ok := prof.Kernels[0].Metrics[m]; !ok {
			t.Fatalf("metric %s missing", m)
		}
	}
	if prof.Kernels[0].Seconds <= 0 {
		t.Fatal("non-positive kernel time")
	}
}

func TestProfileAppRejectsThrottledReference(t *testing.T) {
	// A kernel that throttles at the requested reference configuration must
	// be rejected: its events would not correspond to the assumed clocks.
	p, _ := newProfiler(t, "GTX Titan X")
	hot := &kernels.KernelSpec{
		Name: "hot",
		WarpInstrs: map[hw.Component]float64{
			hw.SP: 2e10, hw.Int: 1.6e10, hw.SF: 4e9,
		},
		SharedLoadBytes: 5e9, SharedStoreBytes: 5e9,
		L2ReadBytes: 8e9, L2WriteBytes: 4e9,
		DRAMReadBytes: 8e9, DRAMWriteBytes: 4e9,
		IssueEfficiency: 0.95,
	}
	ref := hw.Config{CoreMHz: 1164, MemMHz: 4005}
	_, err := p.ProfileApp(context.Background(), kernels.SingleKernelApp(hot), ref)
	if err == nil {
		t.Fatal("throttled reference profile accepted")
	}
	if !errors.Is(err, backend.ErrThrottled) {
		t.Fatalf("err = %v, want wrapped backend.ErrThrottled", err)
	}
}

func TestMeasureIdlePower(t *testing.T) {
	ctx := context.Background()
	p, _ := newProfiler(t, "GTX Titan X")
	got, err := p.MeasureIdlePower(ctx, hw.Config{CoreMHz: 975, MemMHz: 3505})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-84) > 5 {
		t.Fatalf("idle = %g W, want ~84 (paper Fig. 5)", got)
	}
	lo, err := p.MeasureIdlePower(ctx, hw.Config{CoreMHz: 975, MemMHz: 810})
	if err != nil {
		t.Fatal(err)
	}
	if lo >= got {
		t.Fatal("idle power should drop at the low memory frequency")
	}
}

func TestSetClocksPropagates(t *testing.T) {
	ctx := context.Background()
	p, b := newProfiler(t, "GTX Titan X")
	if _, _, err := p.MeasureKernelPower(ctx, kern("k", 1e9), hw.Config{CoreMHz: 595, MemMHz: 810}); err != nil {
		t.Fatal(err)
	}
	if got := b.Clocks(); got.CoreMHz != 595 || got.MemMHz != 810 {
		t.Fatalf("clocks = %v after measurement", got)
	}
	if _, _, err := p.MeasureKernelPower(ctx, kern("k", 1e9), hw.Config{CoreMHz: 111, MemMHz: 810}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunKernelAt(t *testing.T) {
	p, _ := newProfiler(t, "GTX Titan X")
	e, s, err := p.RunKernelAt(kern("k", 5e9), p.HW().DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 || s <= 0 {
		t.Fatalf("energy %g J, time %g s: want both positive", e, s)
	}
	// Energy / time must be a plausible average power (under TDP).
	if pw := e / s; pw <= 0 || pw > p.HW().TDP {
		t.Fatalf("implied power %g W outside (0, TDP]", pw)
	}
}

func TestMedianRobustToRepeats(t *testing.T) {
	// More repeats must not change the measurement by more than the noise
	// scale.
	ctx := context.Background()
	p, _ := newProfiler(t, "Tesla K40c")
	cfg := p.HW().DefaultConfig()
	p.Repeats = 3
	a, _, err := p.MeasureKernelPower(ctx, kern("k", 5e9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Repeats = 15
	b, _, err := p.MeasureKernelPower(ctx, kern("k", 5e9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b)/a > 0.02 {
		t.Fatalf("median unstable: %g vs %g", a, b)
	}
}
