// Package profiler implements the paper's measurement methodology
// (Section V-A): kernels are executed repeatedly until the run spans at
// least one second (so the NVML sensor's refresh period cannot mislead the
// average), every measurement is repeated and the median taken, multi-kernel
// applications weight each kernel's power by its relative execution time,
// and CUPTI events are collected only at the reference configuration.
package profiler

import (
	"fmt"
	"time"

	"gpupower/internal/cupti"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/nvml"
	"gpupower/internal/sim"
	"gpupower/internal/stats"
)

// Profiler measures power and events on one simulated device.
type Profiler struct {
	dev *sim.Device
	nv  *nvml.Device
	col *cupti.Collector

	// MinWall is the minimum wall time per power measurement (paper: ≥1 s
	// at the fastest configuration).
	MinWall time.Duration
	// Repeats is the number of measurement repetitions; the median is
	// reported (paper: 10).
	Repeats int
}

// New creates a profiler with the paper's methodology parameters.
func New(dev *sim.Device) (*Profiler, error) {
	col, err := cupti.NewCollector(dev)
	if err != nil {
		return nil, err
	}
	return &Profiler{
		dev:     dev,
		nv:      nvml.Wrap(dev),
		col:     col,
		MinWall: time.Second,
		Repeats: 10,
	}, nil
}

// Device returns the underlying simulated device.
func (p *Profiler) Device() *sim.Device { return p.dev }

// NVML returns the management-library handle.
func (p *Profiler) NVML() *nvml.Device { return p.nv }

// Collector returns the CUPTI event collector.
func (p *Profiler) Collector() *cupti.Collector { return p.col }

// setClocks drives the NVML clock interface.
func (p *Profiler) setClocks(cfg hw.Config) error {
	return p.nv.SetApplicationsClocks(uint32(cfg.MemMHz), uint32(cfg.CoreMHz))
}

// MeasureKernelPower returns the median-of-Repeats average power of one
// kernel at cfg, in watts, together with the effective (possibly
// TDP-capped) configuration and the single-launch time.
func (p *Profiler) MeasureKernelPower(k *kernels.KernelSpec, cfg hw.Config) (float64, *sim.RunResult, error) {
	if err := p.setClocks(cfg); err != nil {
		return 0, nil, err
	}
	if p.Repeats < 1 {
		return 0, nil, fmt.Errorf("profiler: Repeats must be >= 1, got %d", p.Repeats)
	}
	vals := make([]float64, 0, p.Repeats)
	var run *sim.RunResult
	for i := 0; i < p.Repeats; i++ {
		v, r, err := p.dev.SampledAveragePower(k, p.MinWall)
		if err != nil {
			return 0, nil, err
		}
		vals = append(vals, v)
		run = r
	}
	return stats.Median(vals), run, nil
}

// MeasureAppPower measures an application at cfg, weighting each kernel's
// power by its relative execution time (Section V-A).
func (p *Profiler) MeasureAppPower(app *kernels.App, cfg hw.Config) (float64, error) {
	if err := app.Validate(); err != nil {
		return 0, err
	}
	var weighted, totalTime float64
	for _, k := range app.Kernels {
		pw, run, err := p.MeasureKernelPower(k, cfg)
		if err != nil {
			return 0, err
		}
		t := run.Exec.Seconds()
		weighted += pw * t
		totalTime += t
	}
	if totalTime == 0 {
		return 0, fmt.Errorf("profiler: app %s has zero total kernel time", app.Name)
	}
	return weighted / totalTime, nil
}

// KernelProfile is the event profile of one kernel at the reference
// configuration.
type KernelProfile struct {
	Spec    *kernels.KernelSpec
	Metrics map[cupti.Metric]float64
	// Seconds is the single-launch execution time at the reference
	// configuration, used as the weighting for multi-kernel applications.
	Seconds float64
}

// AppProfile is the event profile of an application at the reference
// configuration — everything the model needs to predict the application's
// power at every other configuration.
type AppProfile struct {
	App       *kernels.App
	RefConfig hw.Config
	Kernels   []KernelProfile
}

// ProfileApp collects CUPTI events for every kernel of the application at
// the reference configuration.
func (p *Profiler) ProfileApp(app *kernels.App, ref hw.Config) (*AppProfile, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if err := p.setClocks(ref); err != nil {
		return nil, err
	}
	prof := &AppProfile{App: app, RefConfig: ref}
	for _, k := range app.Kernels {
		metrics, run, err := p.col.CollectMetrics(k)
		if err != nil {
			return nil, err
		}
		if run.Effective != ref {
			// A TDP-capped reference run would corrupt the event-to-cycle
			// relation the model assumes; the paper's reference configs
			// never throttle, so surface it loudly.
			return nil, fmt.Errorf("profiler: kernel %s throttled at reference %v (ran at %v)",
				k.Name, ref, run.Effective)
		}
		prof.Kernels = append(prof.Kernels, KernelProfile{
			Spec:    k,
			Metrics: metrics,
			Seconds: run.Exec.Seconds(),
		})
	}
	return prof, nil
}

// MeasureIdlePower measures the awake-but-idle device at cfg.
func (p *Profiler) MeasureIdlePower(cfg hw.Config) (float64, error) {
	if err := p.setClocks(cfg); err != nil {
		return 0, err
	}
	vals := make([]float64, 0, p.Repeats)
	for i := 0; i < p.Repeats; i++ {
		vals = append(vals, p.dev.SampledIdlePower(p.MinWall))
	}
	return stats.Median(vals), nil
}
