// Package profiler implements the paper's measurement methodology
// (Section V-A): kernels are executed repeatedly until the run spans at
// least one second (so the NVML sensor's refresh period cannot mislead the
// average), every measurement is repeated and the median taken, multi-kernel
// applications weight each kernel's power by its relative execution time,
// and CUPTI events are collected only at the reference configuration.
//
// The profiler is backend-agnostic: it drives any backend.Backend — the
// in-process simulator, a recorded measurement trace, or (on real hardware)
// an NVML/CUPTI exporter — and never peeks behind the measurement seam.
package profiler

import (
	"context"
	"fmt"
	"time"

	"gpupower/internal/backend"
	"gpupower/internal/cupti"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/stats"
)

// Profiler measures power and events through one measurement backend.
type Profiler struct {
	b backend.Backend

	// MinWall is the minimum wall time per power measurement (paper: ≥1 s
	// at the fastest configuration).
	MinWall time.Duration
	// Repeats is the number of measurement repetitions; the median is
	// reported (paper: 10).
	Repeats int
}

// New creates a profiler with the paper's methodology parameters.
func New(b backend.Backend) (*Profiler, error) {
	if b == nil {
		return nil, fmt.Errorf("profiler: nil backend")
	}
	return &Profiler{
		b:       b,
		MinWall: time.Second,
		Repeats: 10,
	}, nil
}

// Backend returns the measurement backend the profiler drives.
func (p *Profiler) Backend() backend.Backend { return p.b }

// HW returns the static hardware description of the profiled device.
func (p *Profiler) HW() *hw.Device { return p.b.Device() }

// setClocks drives the backend's clock interface.
func (p *Profiler) setClocks(cfg hw.Config) error {
	return p.b.SetClocks(cfg)
}

// MeasureKernelPower returns the median-of-Repeats average power of one
// kernel at cfg, in watts, together with the effective (possibly
// TDP-capped) configuration and the single-launch time. Cancellation is
// checked between repetitions.
func (p *Profiler) MeasureKernelPower(ctx context.Context, k *kernels.KernelSpec, cfg hw.Config) (float64, backend.RunInfo, error) {
	if err := p.setClocks(cfg); err != nil {
		return 0, backend.RunInfo{}, err
	}
	if p.Repeats < 1 {
		return 0, backend.RunInfo{}, fmt.Errorf("profiler: Repeats must be >= 1, got %d", p.Repeats)
	}
	vals := make([]float64, 0, p.Repeats)
	var run backend.RunInfo
	for i := 0; i < p.Repeats; i++ {
		if err := backend.CheckContext(ctx, "profiler: measuring "+k.Name); err != nil {
			return 0, backend.RunInfo{}, err
		}
		v, r, err := p.b.SampledKernelPower(k, p.MinWall)
		if err != nil {
			return 0, backend.RunInfo{}, err
		}
		vals = append(vals, v)
		run = r
	}
	return stats.Median(vals), run, nil
}

// MeasureAppPower measures an application at cfg, weighting each kernel's
// power by its relative execution time (Section V-A).
func (p *Profiler) MeasureAppPower(ctx context.Context, app *kernels.App, cfg hw.Config) (float64, error) {
	if err := app.Validate(); err != nil {
		return 0, err
	}
	var weighted, totalTime float64
	for _, k := range app.Kernels {
		pw, run, err := p.MeasureKernelPower(ctx, k, cfg)
		if err != nil {
			return 0, err
		}
		t := run.Seconds
		weighted += pw * t
		totalTime += t
	}
	if totalTime == 0 { //lint:ignore floateq guard: exactly-zero kernel time means an empty app, which must not divide the weighted mean
		return 0, fmt.Errorf("profiler: app %s has zero total kernel time", app.Name)
	}
	return weighted / totalTime, nil
}

// KernelProfile is the event profile of one kernel at the reference
// configuration.
type KernelProfile struct {
	Spec    *kernels.KernelSpec
	Metrics map[cupti.Metric]float64
	// Seconds is the single-launch execution time at the reference
	// configuration, used as the weighting for multi-kernel applications.
	Seconds float64
}

// AppProfile is the event profile of an application at the reference
// configuration — everything the model needs to predict the application's
// power at every other configuration.
type AppProfile struct {
	App       *kernels.App
	RefConfig hw.Config
	Kernels   []KernelProfile
}

// ProfileApp collects CUPTI events for every kernel of the application at
// the reference configuration. Cancellation is checked between kernels.
func (p *Profiler) ProfileApp(ctx context.Context, app *kernels.App, ref hw.Config) (*AppProfile, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if err := p.setClocks(ref); err != nil {
		return nil, err
	}
	prof := &AppProfile{App: app, RefConfig: ref}
	for _, k := range app.Kernels {
		if err := backend.CheckContext(ctx, "profiler: profiling "+app.Name); err != nil {
			return nil, err
		}
		metrics, run, err := p.b.CollectMetrics(k)
		if err != nil {
			return nil, err
		}
		if run.Effective != ref {
			// A TDP-capped reference run would corrupt the event-to-cycle
			// relation the model assumes; the paper's reference configs
			// never throttle, so surface it loudly.
			return nil, fmt.Errorf("profiler: kernel %s at reference %v (ran at %v): %w",
				k.Name, ref, run.Effective, backend.ErrThrottled)
		}
		prof.Kernels = append(prof.Kernels, KernelProfile{
			Spec:    k,
			Metrics: metricsByName(metrics),
			Seconds: run.Seconds,
		})
	}
	return prof, nil
}

// metricsByName converts the backend's string-keyed metrics into the CUPTI
// façade's typed keys the model layers consume.
func metricsByName(m backend.Metrics) map[cupti.Metric]float64 {
	out := make(map[cupti.Metric]float64, len(m))
	for name, v := range m {
		out[cupti.Metric(name)] = v
	}
	return out
}

// MeasureIdlePower measures the awake-but-idle device at cfg.
func (p *Profiler) MeasureIdlePower(ctx context.Context, cfg hw.Config) (float64, error) {
	if err := p.setClocks(cfg); err != nil {
		return 0, err
	}
	vals := make([]float64, 0, p.Repeats)
	for i := 0; i < p.Repeats; i++ {
		if err := backend.CheckContext(ctx, "profiler: measuring idle power"); err != nil {
			return 0, err
		}
		v, err := p.b.SampledIdlePower(p.MinWall)
		if err != nil {
			return 0, err
		}
		vals = append(vals, v)
	}
	return stats.Median(vals), nil
}

// RunKernelAt executes one kernel launch at cfg through the backend and
// returns its measured energy (J) and duration (s) — the governed-run and
// time-scaling measurement.
func (p *Profiler) RunKernelAt(k *kernels.KernelSpec, cfg hw.Config) (energyJ, seconds float64, err error) {
	if err := p.setClocks(cfg); err != nil {
		return 0, 0, err
	}
	e, run, err := p.b.RunKernel(k)
	if err != nil {
		return 0, 0, err
	}
	return e, run.Seconds, nil
}
