package scaling

import (
	"context"
	"math"
	"sync"
	"testing"

	"gpupower/internal/backend/simbk"
	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/microbench"
	"gpupower/internal/profiler"
	"gpupower/internal/suites"
)

var (
	clsOnce sync.Once
	clsProf *profiler.Profiler
	cls     *Classifier
	clsErr  error
)

func trained(t *testing.T) (*profiler.Profiler, *Classifier) {
	t.Helper()
	clsOnce.Do(func() {
		b, err := simbk.Open("GTX Titan X", 42)
		if err != nil {
			clsErr = err
			return
		}
		clsProf, clsErr = profiler.New(b)
		if clsErr != nil {
			return
		}
		cls, clsErr = Train(context.Background(), clsProf, microbench.Suite(), 6, 42)
	})
	if clsErr != nil {
		t.Fatal(clsErr)
	}
	return clsProf, cls
}

func TestTrainBasics(t *testing.T) {
	_, c := trained(t)
	if c.K() < 2 {
		t.Fatalf("classifier has %d classes, want >= 2", c.K())
	}
	// Every class curve is 1 at the reference configuration.
	for cls := 0; cls < c.K(); cls++ {
		if math.Abs(c.curves[cls][c.RefIndex]-1) > 1e-9 {
			t.Fatalf("class %d ratio at ref = %g, want 1", cls, c.curves[cls][c.RefIndex])
		}
		// Time ratios are positive everywhere.
		for fi, r := range c.curves[cls] {
			if r <= 0 {
				t.Fatalf("class %d has non-positive ratio %g at config %d", cls, r, fi)
			}
		}
	}
}

func TestTrainValidation(t *testing.T) {
	p, _ := trained(t)
	if _, err := Train(context.Background(), p, microbench.Suite(), 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Train(context.Background(), p, nil, 3, 1); err == nil {
		t.Fatal("empty suite accepted")
	}
}

// TestPredictTimeRatioAccuracy validates the learned classifier and the
// analytic roofline against the simulator's true execution times on the
// (held-out) validation applications.
func TestPredictTimeRatioAccuracy(t *testing.T) {
	p, c := trained(t)
	dev := p.HW()
	ref := dev.DefaultConfig()
	l2bpc, err := core.CalibrateL2BytesPerCycle(context.Background(), p, ref)
	if err != nil {
		t.Fatal(err)
	}

	var learnedErr, analyticErr, n float64
	for _, app := range suites.ValidationSet() {
		k := app.App.Kernels[0]
		refT, err := runAt(p, k, ref)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := p.ProfileApp(context.Background(), kernels.SingleKernelApp(k), ref)
		if err != nil {
			t.Fatal(err)
		}
		u, err := core.AppUtilization(dev, prof, l2bpc)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range dev.AllConfigs() {
			trueT, err := runAt(p, k, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := trueT / refT
			learned, err := c.PredictTimeRatio(u, cfg)
			if err != nil {
				t.Fatal(err)
			}
			analytic := AnalyticTimeRatio(u, ref, cfg)
			learnedErr += math.Abs(learned-want) / want
			analyticErr += math.Abs(analytic-want) / want
			n++
		}
	}
	learnedMAPE := 100 * learnedErr / n
	analyticMAPE := 100 * analyticErr / n
	t.Logf("time-scaling MAPE: learned %.1f%%, analytic %.1f%%", learnedMAPE, analyticMAPE)
	if learnedMAPE > 15 {
		t.Errorf("learned time model MAPE %.1f%%, want < 15%%", learnedMAPE)
	}
	if analyticMAPE > 15 {
		t.Errorf("analytic time model MAPE %.1f%%, want < 15%%", analyticMAPE)
	}
}

func TestClassifySeparatesBoundness(t *testing.T) {
	_, c := trained(t)
	memBound := core.Utilization{hw.DRAM: 0.9, hw.SP: 0.1}
	compBound := core.Utilization{hw.SP: 0.9, hw.DRAM: 0.05}

	// The memory-bound profile's class must slow down far more when the
	// memory clock drops to 810 MHz than the compute-bound one's.
	lowMem := hw.Config{CoreMHz: 975, MemMHz: 810}
	rm, err := c.PredictTimeRatio(memBound, lowMem)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := c.PredictTimeRatio(compBound, lowMem)
	if err != nil {
		t.Fatal(err)
	}
	if rm < rc+0.5 {
		t.Errorf("memory-bound slowdown %.2fx should far exceed compute-bound %.2fx at low fmem", rm, rc)
	}

	// And vice versa for a core-clock drop.
	lowCore := hw.Config{CoreMHz: 595, MemMHz: 3505}
	rm2, err := c.PredictTimeRatio(memBound, lowCore)
	if err != nil {
		t.Fatal(err)
	}
	rc2, err := c.PredictTimeRatio(compBound, lowCore)
	if err != nil {
		t.Fatal(err)
	}
	if rc2 < rm2+0.2 {
		t.Errorf("compute-bound slowdown %.2fx should exceed memory-bound %.2fx at low fcore", rc2, rm2)
	}
}

func TestPredictTimeRatioUnknownConfig(t *testing.T) {
	_, c := trained(t)
	if _, err := c.PredictTimeRatio(core.Utilization{}, hw.Config{CoreMHz: 1, MemMHz: 1}); err == nil {
		t.Fatal("unknown config accepted")
	}
}
