// Package scaling implements the performance (execution-time) side the
// paper pairs its power model with: the authors' earlier "Performance and
// Power-Aware Classification for Frequency Scaling of GPGPU Applications"
// (HeteroPar 2016, the paper's reference [9]). An application's
// time-scaling across V-F configurations is predicted from the same
// reference-configuration utilizations the power model uses, two ways:
//
//   - Analytic: the roofline companion (core.EstimateRelativeTime) — the
//     bound domain's share of the critical path stretches with 1/f.
//   - Learned: the [9]-style classifier — training kernels are clustered
//     by their *measured* time-scaling curves (k-means), and a
//     nearest-centroid classifier on utilization features assigns unseen
//     applications to a scaling class.
//
// Energy-aware DVFS needs both halves (E = P × T); the experiments package
// validates the time half against the simulator's ground truth.
package scaling

import (
	"context"
	"fmt"

	"gpupower/internal/backend"
	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/microbench"
	"gpupower/internal/profiler"
	"gpupower/internal/stats"
)

// Classifier is the learned time-scaling model.
type Classifier struct {
	Configs  []hw.Config
	Ref      hw.Config
	RefIndex int
	// curves[c][f] is class c's mean time ratio T(Configs[f])/T(Ref).
	curves [][]float64
	// centroidUtil[c] is class c's mean utilization feature vector.
	centroidUtil [][]float64
	// configIdx indexes Configs so PredictTimeRatio is one map lookup per
	// call instead of a linear ladder scan (the classifier sits on the
	// same high-query-rate serving path as the prediction surfaces).
	configIdx map[hw.Config]int
}

// K returns the number of scaling classes.
func (c *Classifier) K() int { return len(c.curves) }

// utilFeatures flattens a utilization vector in canonical component order.
func utilFeatures(u core.Utilization) []float64 {
	f := make([]float64, len(hw.Components))
	for i, comp := range hw.Components {
		f[i] = u[comp]
	}
	return f
}

// Train builds the classifier from the microbenchmark suite: each training
// kernel's true time-scaling curve is measured across every configuration
// (a single launch per configuration suffices — execution time, unlike the
// power sensor, is exact), its utilization comes from reference-
// configuration events, and the curves are clustered into k classes.
func Train(ctx context.Context, p *profiler.Profiler, suite []microbench.Benchmark, k int, seed uint64) (*Classifier, error) {
	if k < 1 {
		return nil, fmt.Errorf("scaling: class count %d must be >= 1", k)
	}
	dev := p.HW()
	ref := dev.DefaultConfig()
	configs := dev.AllConfigs()
	refIdx := -1
	for i, cfg := range configs {
		if cfg == ref {
			refIdx = i
		}
	}
	if refIdx < 0 {
		return nil, fmt.Errorf("scaling: reference configuration missing from ladder")
	}
	l2bpc, err := core.CalibrateL2BytesPerCycle(ctx, p, ref)
	if err != nil {
		return nil, err
	}

	var curves, feats [][]float64
	for _, b := range suite {
		if err := backend.CheckContext(ctx, "scaling: training classifier"); err != nil {
			return nil, err
		}
		refRun, err := runAt(p, b.Kernel, ref)
		if err != nil {
			return nil, err
		}
		if refRun <= 0 {
			continue // the Idle pseudo-benchmark has no meaningful scaling
		}
		curve := make([]float64, len(configs))
		usable := true
		for fi, cfg := range configs {
			t, err := runAt(p, b.Kernel, cfg)
			if err != nil {
				return nil, err
			}
			if t <= 0 {
				usable = false
				break
			}
			curve[fi] = t / refRun
		}
		if !usable {
			continue
		}
		prof, err := p.ProfileApp(ctx, kernels.SingleKernelApp(b.Kernel), ref)
		if err != nil {
			return nil, err
		}
		u, err := core.AppUtilization(dev, prof, l2bpc)
		if err != nil {
			return nil, err
		}
		curves = append(curves, curve)
		feats = append(feats, utilFeatures(u))
	}
	if len(curves) == 0 {
		return nil, fmt.Errorf("scaling: no usable training curves")
	}
	if k > len(curves) {
		k = len(curves)
	}
	assign, _ := stats.KMeans(curves, k, seed)

	c := &Classifier{Configs: configs, Ref: ref, RefIndex: refIdx, configIdx: indexConfigs(configs)}
	for cls := 0; cls < k; cls++ {
		var members []int
		for i, a := range assign {
			if a == cls {
				members = append(members, i)
			}
		}
		if len(members) == 0 {
			continue
		}
		curve := make([]float64, len(configs))
		cu := make([]float64, len(hw.Components))
		for _, i := range members {
			for fi := range curve {
				curve[fi] += curves[i][fi]
			}
			for j := range cu {
				cu[j] += feats[i][j]
			}
		}
		inv := 1 / float64(len(members))
		for fi := range curve {
			curve[fi] *= inv
		}
		for j := range cu {
			cu[j] *= inv
		}
		c.curves = append(c.curves, curve)
		c.centroidUtil = append(c.centroidUtil, cu)
	}
	if len(c.curves) == 0 {
		return nil, fmt.Errorf("scaling: clustering produced no classes")
	}
	return c, nil
}

// runAt executes one launch at cfg through the measurement backend and
// returns the execution time in seconds.
func runAt(p *profiler.Profiler, k *kernels.KernelSpec, cfg hw.Config) (float64, error) {
	_, seconds, err := p.RunKernelAt(k, cfg)
	return seconds, err
}

// indexConfigs builds the ladder-position index used by PredictTimeRatio.
func indexConfigs(configs []hw.Config) map[hw.Config]int {
	idx := make(map[hw.Config]int, len(configs))
	for i, cfg := range configs {
		idx[cfg] = i
	}
	return idx
}

// sqDistToCentroid is stats.SqDist(utilFeatures(u), centroidUtil[cls])
// computed without materializing the feature slice: the accumulation walks
// hw.Components in the same canonical order, so the distance — and hence
// every classification — is bitwise-identical to the allocating form.
func (c *Classifier) sqDistToCentroid(u core.Utilization, cls int) float64 {
	cu := c.centroidUtil[cls]
	var s float64
	for i, comp := range hw.Components {
		d := u[comp] - cu[i]
		s += d * d
	}
	return s
}

// Classify returns the index of the scaling class nearest to an
// application's utilization vector.
func (c *Classifier) Classify(u core.Utilization) int {
	best, bestD := 0, c.sqDistToCentroid(u, 0)
	for cls := 1; cls < len(c.centroidUtil); cls++ {
		if d := c.sqDistToCentroid(u, cls); d < bestD {
			best, bestD = cls, d
		}
	}
	return best
}

// PredictTimeRatio predicts T(cfg)/T(ref) for an application with the given
// reference-configuration utilizations. One index lookup plus the
// nearest-centroid scan; no allocation.
func (c *Classifier) PredictTimeRatio(u core.Utilization, cfg hw.Config) (float64, error) {
	fi, ok := c.configIdx[cfg]
	if !ok {
		return 0, fmt.Errorf("scaling: configuration %v unknown to classifier", cfg)
	}
	return c.curves[c.Classify(u)][fi], nil
}

// AnalyticTimeRatio is the roofline companion, exposed alongside the
// classifier for comparison.
func AnalyticTimeRatio(u core.Utilization, ref, cfg hw.Config) float64 {
	return core.EstimateRelativeTime(u, ref, cfg)
}
