module gpupower

go 1.22
