package gpupower_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Section V). One testing.B benchmark per artifact:
//
//	go test -bench=. -benchmem
//
// The first benchmark touching a device pays the model-fitting cost; rigs
// are cached process-wide (experiments.SharedRig), so subsequent figures
// reuse the three fitted models, exactly like the paper's workflow (fit
// once, evaluate everywhere).

import (
	"context"
	"runtime"
	"testing"

	"gpupower"
	"gpupower/internal/core"
	"gpupower/internal/experiments"
	"gpupower/internal/fleet"
	"gpupower/internal/hw"
	"gpupower/internal/linalg"
	"gpupower/internal/microbench"
	"gpupower/internal/parallel"
	"gpupower/internal/silicon"
	"gpupower/internal/stats"
)

const benchSeed = experiments.DefaultSeed

// BenchmarkTable1 regenerates Table I (performance events per device).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RenderTable1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table II (device characteristics).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.RenderTable2()
	}
}

// BenchmarkTable3 regenerates Table III (validation benchmarks).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.RenderTable3()
	}
}

// BenchmarkFig2 regenerates Fig. 2 (DVFS impact on BlackScholes and CUTCP).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig2(context.Background(), benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5 (microbenchmark utilizations and power
// breakdown).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5(context.Background(), benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates Fig. 6 (measured vs predicted core voltage).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(context.Background(), benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates Fig. 7 (power prediction for all V-F
// configurations on the three devices). This is the headline experiment.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig7(context.Background(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, d := range r.Devices {
				b.ReportMetric(d.MAE, "MAE%/"+shortDevice(d.Device))
			}
		}
	}
}

func shortDevice(name string) string {
	switch name {
	case "Titan Xp":
		return "xp"
	case "GTX Titan X":
		return "titanx"
	default:
		return "k40c"
	}
}

// BenchmarkFig8 regenerates Fig. 8 (per-memory-frequency prediction error).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(context.Background(), benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates Fig. 9 (matrixMulCUBLAS input-size sweep).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig9(context.Background(), benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10 regenerates Fig. 10 (validation-set power breakdown).
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig10(context.Background(), benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvergence regenerates the Section V-A convergence report.
func BenchmarkConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunConvergence(context.Background(), benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselines regenerates the Section VI baseline comparison.
func BenchmarkBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBaselines(context.Background(), benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation regenerates the design-choice ablations.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblation(context.Background(), benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// --- component-level benchmarks ---

// BenchmarkModelFitK40c measures one full Section III-D fit (dataset
// collection + iterative estimation) on the smallest device.
func BenchmarkModelFitK40c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gpu, err := gpupower.Open(gpupower.TeslaK40c, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gpu.FitPowerModel(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict measures a single model evaluation (the operation a
// real-time DVFS governor would run).
func BenchmarkPredict(b *testing.B) {
	r, err := experiments.SharedRig("GTX Titan X", benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	m, err := r.Model(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	u := core.Utilization{hw.SP: 0.8, hw.DRAM: 0.4, hw.L2: 0.2, hw.Int: 0.1}
	cfg := hw.Config{CoreMHz: 595, MemMHz: 810}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(u, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateKernel measures the roofline timing model.
func BenchmarkSimulateKernel(b *testing.B) {
	dev := hw.GTXTitanX()
	k := microbench.Suite()[0].Kernel
	cfg := dev.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := silicon.Simulate(dev, k, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// nnlsProblem builds the fitting problem at its production size
// (83 benchmarks × 64 configurations × 11 parameters).
func nnlsProblem() (*linalg.Matrix, []float64) {
	rng := stats.NewRNG(1)
	rows, cols := 83*64, 11
	a := linalg.NewMatrix(rows, cols)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			a.Set(i, j, rng.Float64())
		}
		y[i] = rng.Uniform(50, 250)
	}
	return a, y
}

// BenchmarkNNLS measures the regression core the way the estimation engine
// actually calls it: through a reused NNLSWorkspace, so the ~1.6 MB of QR
// and active-set scratch is a one-time cost outside the timer and the steady
// state is allocation-free (DESIGN.md §10).
func BenchmarkNNLS(b *testing.B) {
	a, y := nnlsProblem()
	ws := linalg.NewNNLSWorkspace(a.Rows(), a.Cols())
	x := make([]float64, a.Cols())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ws.SolveInto(x, a, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNLSCold preserves the allocating convenience-API path (fresh
// workspace per solve) so the cost BenchmarkNNLS amortizes away stays
// visible in BENCH_results.json.
func BenchmarkNNLSCold(b *testing.B) {
	a, y := nnlsProblem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.NNLS(a, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIsotonic measures the monotonic-projection step.
func BenchmarkIsotonic(b *testing.B) {
	rng := stats.NewRNG(2)
	y := make([]float64, 64)
	for i := range y {
		y[i] = rng.Normal(1, 0.1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.IsotonicRegression(y, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureAppPower measures the Section V-A measurement loop
// (repeat to ≥1 s, median of 10) for one application at one configuration.
func BenchmarkMeasureAppPower(b *testing.B) {
	r, err := experiments.SharedRig("GTX Titan X", benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	wl, err := gpupower.WorkloadByName("BLCKSC")
	if err != nil {
		b.Fatal(err)
	}
	cfg := hw.Config{CoreMHz: 975, MemMHz: 3505}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Profiler.MeasureAppPower(context.Background(), wl.App, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDVFSSearch measures the use-case-3 operating-point search across
// the whole configuration space.
func BenchmarkDVFSSearch(b *testing.B) {
	gpu, err := gpupower.Open(gpupower.GTXTitanX, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	r, err := experiments.SharedRig("GTX Titan X", benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	m, err := r.Model(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	wl, err := gpupower.WorkloadByName("LBM")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := gpu.ProfileForModel(wl.App, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gpupower.FindBestConfig(m, gpu.Device(), prof, gpupower.MinEnergy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRobustness evaluates the Fig. 7 accuracy across three
// independent die instances (seed sweep).
func BenchmarkRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunRobustness(context.Background(), []uint64{benchSeed, benchSeed + 1, benchSeed + 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBreakdownTruth regenerates the simulator-only component-level
// decomposition validation.
func BenchmarkBreakdownTruth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, dev := range []string{"Titan Xp", "GTX Titan X", "Tesla K40c"} {
			if _, err := experiments.RunBreakdownTruth(context.Background(), dev, benchSeed); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGovernor regenerates the real-time governor study (the paper's
// Section VII future-work scenario).
func BenchmarkGovernor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunGovernorStudy(context.Background(), benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimeModel regenerates the time-scaling validation (the paper's
// companion performance model, ref. [9]).
func BenchmarkTimeModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTimeModel(context.Background(), benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel estimation engine benchmarks ----------------------------------
//
// BenchmarkEstimate{Serial,Parallel}/<device> compare the Section III-D fit
// on the sequential oracle path vs the worker-pool path, per device catalog
// (Titan Xp: 7×4 ladder, GTX Titan X: 19×2, Tesla K40c: 4×1). The dataset
// is measured once outside the timer; the loop times Estimate alone.
//
//	go test -bench 'BenchmarkEstimate(Serial|Parallel)' -benchtime 3x
//
// The speedup column recorded in EXPERIMENTS.md comes from these two
// benchmarks at matching GOMAXPROCS.

func estimateDataset(b *testing.B, device string) *core.Dataset {
	b.Helper()
	r, err := experiments.SharedRig(device, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	d, err := r.Dataset(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func benchmarkEstimate(b *testing.B, sequential bool) {
	for _, device := range []string{gpupower.TitanXp, gpupower.GTXTitanX, gpupower.TeslaK40c} {
		b.Run(device, func(b *testing.B) {
			d := estimateDataset(b, device)
			prev := gpupower.SetSequential(sequential)
			defer gpupower.SetSequential(prev)
			if !sequential {
				// This benchmark exists to measure the worker-pool path;
				// measuring the serial path under the "Parallel" name would
				// poison every speedup comparison derived from it. Widen the
				// scheduler on single-core hosts, then fail loudly if the
				// pool still won't fan out (e.g. sequential mode or a
				// max-workers cap leaked in from elsewhere).
				if runtime.GOMAXPROCS(0) < 2 {
					prevProcs := runtime.GOMAXPROCS(2)
					defer runtime.GOMAXPROCS(prevProcs)
				}
				if w := parallel.Workers(); w <= 1 {
					b.Fatalf("parallel benchmark would run sequentially: parallel.Workers() = %d", w)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Estimate(context.Background(), d, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimateSerial fits on the sequential oracle path.
func BenchmarkEstimateSerial(b *testing.B) { benchmarkEstimate(b, true) }

// BenchmarkEstimateParallel fits with the worker pool (GOMAXPROCS-sized).
func BenchmarkEstimateParallel(b *testing.B) { benchmarkEstimate(b, false) }

// BenchmarkEstimateReference fits with the preserved pre-restructuring
// engine (row-by-row assembly, reference QR, O(nb) objective closures).
// Dividing its ns/op by BenchmarkEstimateParallel's gives the per-device
// algorithmic speedup recorded in EXPERIMENTS.md.
func BenchmarkEstimateReference(b *testing.B) {
	for _, device := range []string{gpupower.TitanXp, gpupower.GTXTitanX, gpupower.TeslaK40c} {
		b.Run(device, func(b *testing.B) {
			d := estimateDataset(b, device)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.EstimateReference(context.Background(), d, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFleetFit measures fleet-scale fitting throughput: nine
// heterogeneous registry members fitted concurrently with per-worker
// workspace reuse. Datasets are measured once outside the timer, mirroring
// production where samples arrive from the devices themselves.
func BenchmarkFleetFit(b *testing.B) {
	specs := fleet.Registry(9, benchSeed)
	datasets, err := fleet.BuildDatasets(context.Background(), specs)
	if err != nil {
		b.Fatal(err)
	}
	if procs := runtime.GOMAXPROCS(0); procs < len(specs) {
		prev := runtime.GOMAXPROCS(len(specs))
		defer runtime.GOMAXPROCS(prev)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fleet.FitDatasets(context.Background(), datasets, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateOperatingPoints times the DVFS sweep that
// FindBestConfig rides on (one model evaluation per ladder configuration).
func BenchmarkEvaluateOperatingPoints(b *testing.B) {
	gpu, err := gpupower.Open(gpupower.GTXTitanX, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	r, err := experiments.SharedRig("GTX Titan X", benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	m, err := r.Model(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	wl, err := gpupower.WorkloadByName("LBM")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := gpu.ProfileForModel(wl.App, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gpupower.EvaluateOperatingPoints(m, gpu.Device(), prof); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFindBestConfigWarm times the repeated operating-point search on
// a warm prediction surface — the steady state of a governor re-deciding an
// already-profiled kernel. The first call outside the timer populates the
// surface cache; every timed iteration is a cache hit plus one ordered scan
// of the ladder. Compare against BenchmarkDVFSSearch's pre-cache baseline
// in EXPERIMENTS.md for the warm-path speedup factor.
func BenchmarkFindBestConfigWarm(b *testing.B) {
	gpu, err := gpupower.Open(gpupower.GTXTitanX, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	r, err := experiments.SharedRig("GTX Titan X", benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	m, err := r.Model(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	wl, err := gpupower.WorkloadByName("LBM")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := gpu.ProfileForModel(wl.App, m)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the surface cache before the timer starts.
	if _, err := gpupower.FindBestConfig(m, gpu.Device(), prof, gpupower.MinEnergy); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gpupower.FindBestConfig(m, gpu.Device(), prof, gpupower.MinEnergy); err != nil {
			b.Fatal(err)
		}
	}
}
