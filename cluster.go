package gpupower

import (
	"context"

	"gpupower/internal/cluster"
)

// Fleet-scale discrete-event DVFS simulation (internal/cluster, DESIGN.md
// §12): hundreds to thousands of simulated GPUs serving seeded stochastic
// job streams, each job executed against a fitted power model at the
// operating point the active policy chooses. The engine sustains millions
// of simulated events per second on one core and is bitwise-deterministic
// under parallel execution (GPUs shard across the engine worker pool; the
// metrics fold is ordered).

// ClusterOptions configures one fleet simulation.
type ClusterOptions = cluster.Options

// ClusterMetrics are the fleet-level outcomes of one simulation run.
type ClusterMetrics = cluster.Metrics

// ClusterSimulator is a reusable fleet simulation (runtimes resolved once,
// buffers retained across runs — steady-state re-runs allocate nothing).
type ClusterSimulator = cluster.Simulator

// ClusterDeviceModel binds one fleet device type to its fitted model and
// per-class workload realizations.
type ClusterDeviceModel = cluster.DeviceModel

// ClusterDeviceClass realizes one kernel class on one device model.
type ClusterDeviceClass = cluster.DeviceClass

// ClusterKernelClass is one weighted class of the fleet's job mix.
type ClusterKernelClass = cluster.KernelClass

// ClusterWorkload describes the per-GPU job stream.
type ClusterWorkload = cluster.Workload

// ClusterArrivalProcess selects the arrival process of the job stream.
type ClusterArrivalProcess = cluster.Process

// Arrival processes.
const (
	// ClusterPoisson draws exponential interarrival gaps.
	ClusterPoisson = cluster.Poisson
	// ClusterGammaArrivals draws Gamma-renewal gaps (CV-controlled burstiness).
	ClusterGammaArrivals = cluster.GammaArrivals
	// ClusterDiurnal modulates a Poisson stream with a sinusoidal day/night rate.
	ClusterDiurnal = cluster.Diurnal
)

// ClusterPolicy selects how simulated GPUs pick operating points.
type ClusterPolicy = cluster.Policy

// Cluster policies.
const (
	// ClusterStatic runs every job at reference clocks (the baseline).
	ClusterStatic = cluster.Static
	// ClusterModelDVFS applies the fitted model through the governor per
	// (device model, kernel class), via the generation-keyed decision cache.
	ClusterModelDVFS = cluster.ModelDVFS
	// ClusterOracle picks a per-job minimum-energy point that meets the
	// job's deadline given queue state at dispatch.
	ClusterOracle = cluster.Oracle
)

// NewClusterSimulator validates the options and resolves every model
// evaluation the runs will need (surfaces, governor decisions, idle power).
func NewClusterSimulator(ctx context.Context, opts *ClusterOptions) (*ClusterSimulator, error) {
	return cluster.NewSimulator(ctx, opts)
}

// RunCluster simulates a fleet in one call. Metrics are bitwise-identical
// for a given (Options, Seed) at any worker count.
func RunCluster(ctx context.Context, opts *ClusterOptions) (*ClusterMetrics, error) {
	return cluster.Run(ctx, opts)
}
