package gpupower

import "gpupower/internal/autotune"

// Tuner is the multi-kernel auto-tuner of the paper's use case 3 (citing
// the authors' PDP 2015 auto-tuning work): per-kernel V-F configurations
// minimizing total predicted energy under a runtime budget, planned
// entirely from the model — no execution beyond one reference profile per
// kernel.
type Tuner = autotune.Tuner

// TunePlan is a complete per-kernel configuration assignment.
type TunePlan = autotune.Plan

// TuneCandidate is one V-F operating point on a kernel's Pareto frontier.
type TuneCandidate = autotune.Candidate

// NewTuner creates an auto-tuner on this GPU for a model fitted on the same
// device.
func (g *GPU) NewTuner(m *Model) (*Tuner, error) {
	return autotune.New(g.prof, m)
}
