package gpupower_test

import (
	"context"
	"testing"

	"gpupower"
)

// Facade-level tests for the governor and auto-tuner wrappers (their
// internals are tested in internal/governor and internal/autotune; here we
// verify the public wiring on the fast K40c rig).

func TestFacadeGovernor(t *testing.T) {
	gpu, model := fitted(t)
	gov, err := gpu.NewGovernor(model, gpupower.GovMinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := gpupower.WorkloadByName("SRAD_2")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := gov.RunApp(context.Background(), wl.App, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 5 || len(rep.Records) != 5 {
		t.Fatalf("report shape wrong: %d iterations, %d records", rep.Iterations, len(rep.Records))
	}
	if rep.EnergyJ <= 0 || rep.BaselineEnergyJ <= 0 {
		t.Fatal("non-positive energy totals")
	}
	// The min-energy governor must not waste energy vs the baseline.
	if rep.EnergySavingsPercent() < -1 {
		t.Fatalf("governor wasted %.1f%% energy", -rep.EnergySavingsPercent())
	}
	// Mismatched device must be rejected.
	other := *model
	other.DeviceName = gpupower.TitanXp
	if _, err := gpu.NewGovernor(&other, gpupower.GovMinEnergy); err == nil {
		t.Fatal("device mismatch accepted")
	}
}

func TestFacadeTuner(t *testing.T) {
	gpu, model := fitted(t)
	tuner, err := gpu.NewTuner(model)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := gpupower.WorkloadByName("K-M")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := tuner.Tune(context.Background(), wl.App, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Choice) != 2 {
		t.Fatalf("plan has %d choices, want 2", len(plan.Choice))
	}
	if plan.RelTime > 1.2+1e-9 {
		t.Fatalf("plan time x%.3f exceeds the budget", plan.RelTime)
	}
	if plan.RelEnergy > 1+1e-9 {
		t.Fatalf("plan wastes energy (x%.3f)", plan.RelEnergy)
	}
	for _, c := range plan.Choice {
		if !gpu.Device().SupportsCoreFreq(c.Config.CoreMHz) || !gpu.Device().SupportsMemFreq(c.Config.MemMHz) {
			t.Fatalf("plan chose off-ladder config %v", c.Config)
		}
	}
}

func TestGovernorPolicyNames(t *testing.T) {
	for _, p := range []gpupower.GovernorPolicy{
		gpupower.GovMinEnergy, gpupower.GovMinEDP, gpupower.GovMaxPerfUnderCap,
	} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
}
