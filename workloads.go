package gpupower

import (
	"gpupower/internal/microbench"
	"gpupower/internal/suites"
)

// Workload is one validation application (paper Table III): a short figure
// name, the spelled-out name, the suite it comes from and its kernels.
type Workload = suites.Application

// Workloads returns the paper's 26-application validation set (Rodinia,
// Parboil, Polybench, CUDA SDK), disjoint from the training
// microbenchmarks.
func Workloads() []Workload { return suites.ValidationSet() }

// WorkloadByName returns a validation application by its short name
// (e.g. "BLCKSC", "CUTCP", "LBM", or "CUBLAS" for matrixMulCUBLAS).
func WorkloadByName(short string) (Workload, error) { return suites.ByShort(short) }

// MatrixMulCUBLAS returns the matrixMulCUBLAS workload for a square input
// size of 64, 512 or 4096 (paper Fig. 9).
func MatrixMulCUBLAS(size int) (Workload, error) { return suites.MatrixMulCUBLAS(size) }

// Microbenchmark is one training-suite kernel with its collection label.
type Microbenchmark = microbench.Benchmark

// Microbenchmarks returns the 83-kernel training suite (paper Section IV).
func Microbenchmarks() []Microbenchmark { return microbench.Suite() }
